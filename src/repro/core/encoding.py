"""Bit-packed wire encoding for identifiers, operations and v2 frames.

The evaluation reports identifier sizes in bits (Table 1) and estimates
network cost as the sum of PosID sizes (section 5.2), so the encoding
here is an actual bit format, not an approximation:

- a path element costs 2 bits (branch bit + disambiguator-presence flag)
  plus its disambiguator payload;
- an SDIS disambiguator is the 6-byte site id (48 bits);
- a UDIS disambiguator adds the 4-byte counter (32 + 48 = 80 bits);
- path lengths and atom sizes use Elias gamma codes.

``PosID.size_bits`` agrees with the encoded size by construction (both
are derived from ``PathElement.size_bits``).

Wire format v2 (run frames)
---------------------------

v1 ships one framed operation per atom. v2 adds *frames* built on the
shared segment codec of :mod:`repro.core.runs` (see DESIGN.md §8):

- a **batch frame** (:func:`encode_batch`) carries a whole
  :class:`repro.core.ops.OpBatch` as runs plus singleton operations —
  a local burst of *n* atoms costs one base path, one dis pattern and
  the atoms instead of *n* framed inserts;
- a **state frame** (:func:`encode_state`) carries an entire document
  (the anti-entropy snapshot): collapsed and canonical regions as
  runs, the rest as singleton records.

Every frame opens with the 2-bit escape tag ``3`` — a value no v1
operation uses — followed by a 2-bit frame kind (batch, state, or the
:data:`FRAME_WIRE` escape reserved for the peer protocol of
:mod:`repro.replication.wire`), so one reader (:func:`decode_frame`)
accepts v1 payloads and v2 frames alike. Run atoms live in a trailing
:class:`repro.core.runs.AtomTable`, referenced by the same RLE run
record the disk v2 leaf record uses; the wire and the disk share one
codec and cannot drift.

The public ``decode_*`` entry points raise the typed
:class:`repro.errors.DecodeError` on truncated, corrupt or
trailing-garbage input; the low-level ``read_*`` stream primitives keep
raising bare :class:`EncodingError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.disambiguator import (
    COUNTER_BITS,
    SITE_ID_BITS,
    Disambiguator,
    Sdis,
    Udis,
)
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, OpBatch, Operation
from repro.core.path import PathElement, PosID
from repro.core.runs import (
    AtomRun,
    AtomTable,
    CANONICAL,
    PREFIX,
    Segment,
    find_runs,
    read_run_record,
    write_run_record,
)
from repro.errors import DecodeError, EncodingError, PathError, TreeError
from repro.util.bits import BitReader, BitWriter

# Operation tags.
_TAG_INSERT = 0
_TAG_DELETE = 1
_TAG_FLATTEN = 2
#: The v2 frame escape: a 2-bit tag value no v1 operation record uses.
#: Public so :mod:`repro.replication.wire` can open its frames with the
#: same escape and stay self-describing under one tag grammar.
FRAME_TAG = 3
_TAG_FRAME = FRAME_TAG

#: Width of the frame-kind field following the escape tag.
FRAME_KIND_BITS = 2

# Frame kinds (2 bits after the escape tag).
_FRAME_BATCH = 0
_FRAME_STATE = 1
#: Reserved for the peer protocol: :mod:`repro.replication.wire` owns
#: the grammar behind this kind (envelopes, acks, sync, commitment).
FRAME_WIRE = 2

# Segment tags (1 bit each).
_SEG_OP = 0
_SEG_RUN = 1

# Disambiguator tags.
_DIS_SDIS = 0
_DIS_UDIS = 1

# Document modes (state frames). Public: the peer protocol's
# SyncResponse header (repro.replication.wire) carries the same tag.
MODE_TAGS = {"udis": 0, "sdis": 1}
TAG_MODES = {tag: mode for mode, tag in MODE_TAGS.items()}
_MODE_TAGS = MODE_TAGS
_TAG_MODES = TAG_MODES


def write_disambiguator(writer: BitWriter, dis: Disambiguator) -> None:
    """Append a disambiguator (1 tag bit + payload)."""
    if isinstance(dis, Udis):
        writer.write_bit(_DIS_UDIS)
        writer.write_bits(dis.counter, COUNTER_BITS)
        writer.write_bits(dis.site, SITE_ID_BITS)
    elif isinstance(dis, Sdis):
        writer.write_bit(_DIS_SDIS)
        writer.write_bits(dis.site, SITE_ID_BITS)
    else:
        raise EncodingError(f"unknown disambiguator type {dis!r}")


def read_disambiguator(reader: BitReader) -> Disambiguator:
    """Read a disambiguator written by :func:`write_disambiguator`."""
    if reader.read_bit() == _DIS_UDIS:
        counter = reader.read_bits(COUNTER_BITS)
        site = reader.read_bits(SITE_ID_BITS)
        return Udis(counter, site)
    return Sdis(reader.read_bits(SITE_ID_BITS))


def write_posid(writer: BitWriter, posid: PosID) -> None:
    """Append a PosID: gamma-coded length, then the elements."""
    writer.write_elias_gamma(posid.depth + 1)
    for element in posid:
        writer.write_bit(element.bit)
        if element.dis is None:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            write_disambiguator(writer, element.dis)


def read_posid(reader: BitReader) -> PosID:
    """Read a PosID written by :func:`write_posid`."""
    depth = reader.read_elias_gamma() - 1
    elements = []
    for _ in range(depth):
        bit = reader.read_bit()
        if reader.read_bit():
            elements.append(PathElement(bit, read_disambiguator(reader)))
        else:
            elements.append(PathElement(bit))
    return PosID(elements)


def encode_posid(posid: PosID) -> Tuple[bytes, int]:
    """Encode a lone PosID; returns ``(bytes, bit_length)``."""
    writer = BitWriter()
    write_posid(writer, posid)
    return writer.getvalue(), writer.bit_length


def decode_posid(data: bytes, bit_length: Optional[int] = None) -> PosID:
    """Decode a lone PosID.

    Raises :class:`repro.errors.DecodeError` on truncated input or
    trailing garbage (non-padding bits after the identifier).
    """
    reader = start_decode(data, bit_length)
    posid = decode_guarded(read_posid, reader, "PosID")
    finish_decode(reader, "PosID")
    return posid


def start_decode(data: bytes, bit_length: Optional[int]) -> BitReader:
    """Open a guarded decode: a :class:`BitReader` whose construction
    failures surface as the typed :class:`DecodeError`."""
    try:
        return BitReader(data, bit_length)
    except EncodingError as exc:
        raise DecodeError(str(exc)) from exc


def decode_guarded(read, reader: BitReader, what: str):
    """Run a stream reader, converting every failure mode of corrupt
    input — exhausted stream, invalid records, bad UTF-8, oversized
    fields — into the typed :class:`DecodeError`."""
    try:
        return read(reader)
    except DecodeError:
        raise
    except (EncodingError, PathError, TreeError, UnicodeDecodeError,
            ValueError, OverflowError, MemoryError) as exc:
        raise DecodeError(f"truncated or corrupt {what}: {exc}") from exc


def finish_decode(reader: BitReader, what: str) -> None:
    """Reject trailing garbage. With an explicit ``bit_length`` the
    payload must end exactly; without one, only whole-byte zero padding
    (at most 7 bits, as :meth:`BitWriter.getvalue` emits) may remain."""
    remaining = reader.remaining
    if remaining == 0:
        return
    if remaining >= 8:
        raise DecodeError(
            f"trailing garbage after {what}: {remaining} unread bits"
        )
    if reader.read_bits(remaining) != 0:
        raise DecodeError(f"non-zero padding after {what}")


def write_text(writer: BitWriter, value: object) -> None:
    """Append a text field as a length-prefixed UTF-8 payload (atoms,
    digests, transaction tags — every string on the wire uses this)."""
    text = value if isinstance(value, str) else repr(value)
    payload = text.encode("utf-8")
    writer.write_elias_gamma(len(payload) + 1)
    writer.write_bytes(payload)


def read_text(reader: BitReader) -> str:
    """Read a field written by :func:`write_text`."""
    length = reader.read_elias_gamma() - 1
    return reader.read_bytes(length).decode("utf-8")


def _write_atom(writer: BitWriter, atom: object) -> None:
    """Append an atom as a length-prefixed UTF-8 payload."""
    write_text(writer, atom)


def _read_atom(reader: BitReader) -> str:
    return read_text(reader)


def write_operation(writer: BitWriter, op: Operation) -> None:
    """Append an operation (2-bit tag + payload)."""
    if isinstance(op, InsertOp):
        writer.write_bits(_TAG_INSERT, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.posid)
        _write_atom(writer, op.atom)
    elif isinstance(op, DeleteOp):
        writer.write_bits(_TAG_DELETE, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.posid)
    elif isinstance(op, FlattenOp):
        writer.write_bits(_TAG_FLATTEN, 2)
        writer.write_bits(op.origin, SITE_ID_BITS)
        write_posid(writer, op.path)
        _write_atom(writer, op.digest)
        # The commitment-protocol transaction tag must survive the wire:
        # participants match the committed flatten to their vote lock by
        # it (see repro.replication.site).
        if op.txn is None:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            write_text(writer, op.txn)
    else:
        raise EncodingError(f"unknown operation {op!r}")


def read_operation(reader: BitReader) -> Operation:
    """Read an operation written by :func:`write_operation`.

    Atoms decode as strings (the only atom type the traces use); flatten
    operations decode without ``expected_atoms``.
    """
    tag = reader.read_bits(2)
    if tag == _TAG_FRAME:
        raise EncodingError(
            "v2 frame where a bare operation was expected; use decode_frame"
        )
    return _read_v1_operation(reader, tag)


def encode_operation(op: Operation) -> Tuple[bytes, int]:
    """Encode a lone operation; returns ``(bytes, bit_length)``."""
    writer = BitWriter()
    write_operation(writer, op)
    return writer.getvalue(), writer.bit_length


def decode_operation(data: bytes, bit_length: Optional[int] = None) -> Operation:
    """Decode a lone operation.

    Raises :class:`repro.errors.DecodeError` on truncated input or
    trailing garbage.
    """
    reader = start_decode(data, bit_length)
    op = decode_guarded(read_operation, reader, "operation")
    finish_decode(reader, "operation")
    return op


def operation_cost_bits(op: Operation) -> int:
    """Network cost of an operation in bits (section 5.2: a PosID plus,
    for inserts, the atom)."""
    return encode_operation(op)[1]


# ---------------------------------------------------------------------------
# v2 frames: batches and document state as run segments.
# ---------------------------------------------------------------------------


def _write_run_segment(writer: BitWriter, run: AtomRun,
                       table: AtomTable) -> None:
    """One run segment: base path, shape bit, dis pattern, and the
    shared RLE run record referencing the frame's atom table."""
    write_posid(writer, PosID(run.base))
    writer.write_bit(int(run.shape == PREFIX))
    dis = run.dis
    if dis is None:
        writer.write_bit(0)
    else:
        writer.write_bit(1)
        if dis[0] == "udis":
            writer.write_bit(_DIS_UDIS)
            writer.write_bits(dis[1], SITE_ID_BITS)
            writer.write_bits(dis[2], COUNTER_BITS)
        else:
            writer.write_bit(_DIS_SDIS)
            writer.write_bits(dis[1], SITE_ID_BITS)
    write_run_record(writer, len(run.atoms), table.add_run(run.atoms))


def _read_run_segment(reader: BitReader) -> Tuple:
    """Counterpart of :func:`_write_run_segment`; atoms resolve once
    the trailing table arrives: returns ``(base, shape, dis, count,
    first_ref)``."""
    base = read_posid(reader).elements
    shape = PREFIX if reader.read_bit() else CANONICAL
    dis: Optional[Tuple] = None
    if reader.read_bit():
        if reader.read_bit() == _DIS_UDIS:
            site = reader.read_bits(SITE_ID_BITS)
            counter = reader.read_bits(COUNTER_BITS)
            dis = ("udis", site, counter)
        else:
            dis = ("sdis", reader.read_bits(SITE_ID_BITS))
    count, first = read_run_record(reader)
    return base, shape, dis, count, first


def _write_atom_table(writer: BitWriter, table: AtomTable) -> None:
    writer.write_elias_gamma(len(table.payloads) + 1)
    for payload in table.payloads:
        writer.write_elias_gamma(len(payload) + 1)
        writer.write_bytes(payload)


def _read_atom_table(reader: BitReader) -> AtomTable:
    count = reader.read_elias_gamma() - 1
    payloads = []
    for _ in range(count):
        length = reader.read_elias_gamma() - 1
        payloads.append(reader.read_bytes(length))
    return AtomTable(payloads)


def _write_segments(writer: BitWriter, segments: List[Segment]) -> None:
    writer.write_elias_gamma(len(segments) + 1)
    table = AtomTable()
    for segment in segments:
        if isinstance(segment, AtomRun):
            writer.write_bit(_SEG_RUN)
            _write_run_segment(writer, segment, table)
        else:
            writer.write_bit(_SEG_OP)
            write_operation(writer, segment)
    _write_atom_table(writer, table)


def _read_segments(reader: BitReader) -> List[Segment]:
    count = reader.read_elias_gamma() - 1
    parsed: List = []
    for _ in range(count):
        if reader.read_bit() == _SEG_RUN:
            parsed.append(_read_run_segment(reader))
        else:
            parsed.append(read_operation(reader))
    table = _read_atom_table(reader)
    segments: List[Segment] = []
    for item in parsed:
        if isinstance(item, tuple):
            base, shape, dis, length, first = item
            atoms = tuple(table.get_run(first, length))
            segments.append(AtomRun(base, atoms, shape, dis))
        else:
            segments.append(item)
    return segments


#: Public names for the segment-stream codec: the layout is shared by
#: v2 batch frames, state frames, and the peer protocol's ``SyncDelta``
#: body (:mod:`repro.replication.wire`) — one definition, three frames.
write_segments = _write_segments
read_segments = _read_segments


def encode_batch(batch: OpBatch,
                 min_run_atoms: Optional[int] = None) -> Tuple[bytes, int]:
    """Encode an :class:`OpBatch` as a v2 batch frame.

    Consecutive insert bursts that realize a run shape (one
    ``insert_text``, one grouped allocation) collapse into run segments
    — base path + dis pattern + atoms — instead of per-op records;
    everything else ships as v1 operation records inside the frame.
    Returns ``(bytes, bit_length)``.
    """
    writer = BitWriter()
    writer.write_bits(_TAG_FRAME, 2)
    writer.write_bits(_FRAME_BATCH, FRAME_KIND_BITS)
    writer.write_bits(batch.origin, SITE_ID_BITS)
    writer.write_elias_gamma(batch.seq_start + 1)
    writer.write_elias_gamma(batch.seq_end - batch.seq_start + 1)
    if min_run_atoms is None:
        segments = find_runs(batch.ops, batch.origin)
    else:
        segments = find_runs(batch.ops, batch.origin, min_run_atoms)
    _write_segments(writer, segments)
    return writer.getvalue(), writer.bit_length


def _read_batch_frame(reader: BitReader) -> OpBatch:
    origin = reader.read_bits(SITE_ID_BITS)
    seq_start = reader.read_elias_gamma() - 1
    seq_span = reader.read_elias_gamma() - 1
    ops: List[object] = []
    for segment in _read_segments(reader):
        if isinstance(segment, AtomRun):
            ops.extend(segment.insert_ops(origin))
        else:
            ops.append(segment)
    return OpBatch(tuple(ops), origin, seq_start, seq_start + seq_span)


def decode_batch(data: bytes, bit_length: Optional[int] = None) -> OpBatch:
    """Decode a v2 batch frame back into an :class:`OpBatch`.

    Run segments expand to their per-atom insert operations, so the
    result applies through the ordinary batch paths and digests equal
    to the batch that was encoded.
    """
    batch = decode_frame(data, bit_length)
    if not isinstance(batch, OpBatch):
        raise DecodeError("payload is a lone v1 operation, not a batch frame")
    return batch


def decode_frame(data: bytes, bit_length: Optional[int] = None
                 ) -> Union[Operation, OpBatch]:
    """Decode any wire payload: a v1 operation or a v2 batch frame.

    The v2 escape tag occupies the one 2-bit value v1 never wrote, so
    v1 insert and delete payloads decode under this reader unchanged.
    The flatten record is the one exception to byte-level stability
    across releases: it gained an optional commitment-transaction tag
    (a presence bit after the digest), so flatten bytes written by the
    pre-wire-protocol encoder do not decode under this one. Flatten
    records only ever travel inside live envelopes — never persisted —
    so the format change has no migration surface.
    """
    reader = start_decode(data, bit_length)

    def read(inner: BitReader):
        tag = inner.read_bits(2)
        if tag != _TAG_FRAME:
            return _read_v1_operation(inner, tag)
        kind = inner.read_bits(FRAME_KIND_BITS)
        if kind == _FRAME_STATE:
            raise EncodingError(
                "state frame: decode with decode_state, not decode_frame"
            )
        if kind == FRAME_WIRE:
            raise EncodingError(
                "peer-protocol frame: decode with "
                "repro.replication.wire.decode_wire"
            )
        if kind != _FRAME_BATCH:
            raise EncodingError(f"unknown frame kind {kind}")
        return _read_batch_frame(inner)

    payload = decode_guarded(read, reader, "frame")
    finish_decode(reader, "frame")
    return payload


def _read_v1_operation(reader: BitReader, tag: int) -> Operation:
    """Finish reading a v1 operation whose 2-bit tag was consumed."""
    origin = reader.read_bits(SITE_ID_BITS)
    if tag == _TAG_INSERT:
        posid = read_posid(reader)
        return InsertOp(posid, _read_atom(reader), origin)
    if tag == _TAG_DELETE:
        return DeleteOp(read_posid(reader), origin)
    path = read_posid(reader)
    digest = _read_atom(reader)
    txn = read_text(reader) if reader.read_bit() else None
    return FlattenOp(path, digest, origin, txn=txn)


def batch_cost_bits(batch: OpBatch) -> int:
    """Network cost of a batch shipped as one v2 frame, in bits (the
    frame-level extension of :func:`operation_cost_bits`)."""
    return encode_batch(batch)[1]


# ---------------------------------------------------------------------------
# Document state frames (anti-entropy snapshots).
# ---------------------------------------------------------------------------

#: Wire bytes a state snapshot spends beside the frame itself: the
#: 32-byte content digest plus a two-byte envelope (kind + length tag).
STATE_ENVELOPE_BYTES = 34


@dataclass(frozen=True)
class DocumentState:
    """One replica's whole document, encoded as a v2 state frame.

    The payload of state-transfer catch-up: collapsed and canonical
    regions travel as run segments and load straight back into
    :class:`repro.core.node.ArrayLeaf` storage. ``digest`` is the
    content digest of the visible atoms, checked on load.
    """

    site: int
    mode: str
    frame: bytes
    frame_bits: int
    digest: str
    atom_count: int
    run_segments: int
    op_segments: int

    @property
    def frame_bytes(self) -> int:
        return (self.frame_bits + 7) // 8

    @property
    def wire_bytes(self) -> int:
        """Total bytes this snapshot costs on the wire."""
        return self.frame_bytes + STATE_ENVELOPE_BYTES


def encode_state(segments: List[Segment], mode: str, site: int,
                 digest: str) -> DocumentState:
    """Encode document state segments as a v2 state frame."""
    if mode not in _MODE_TAGS:
        raise EncodingError(f"unknown document mode {mode!r}")
    writer = BitWriter()
    writer.write_bits(_TAG_FRAME, 2)
    writer.write_bits(_FRAME_STATE, FRAME_KIND_BITS)
    writer.write_bits(site, SITE_ID_BITS)
    writer.write_bit(_MODE_TAGS[mode])
    _write_segments(writer, segments)
    atom_count = 0
    run_segments = 0
    op_segments = 0
    for segment in segments:
        if isinstance(segment, AtomRun):
            run_segments += 1
            atom_count += len(segment.atoms)
        else:
            op_segments += 1
            if isinstance(segment, InsertOp):
                atom_count += 1
    return DocumentState(
        site, mode, writer.getvalue(), writer.bit_length, digest,
        atom_count, run_segments, op_segments,
    )


def decode_state(state: DocumentState) -> Tuple[int, str, List[Segment]]:
    """Decode a state frame: ``(site, mode, segments)``.

    Raises :class:`DecodeError` on truncation, trailing garbage, or a
    frame that is not a state frame.
    """
    reader = start_decode(state.frame, state.frame_bits)

    def read(inner: BitReader):
        if (inner.read_bits(2) != _TAG_FRAME
                or inner.read_bits(FRAME_KIND_BITS) != _FRAME_STATE):
            raise EncodingError("not a state frame")
        site = inner.read_bits(SITE_ID_BITS)
        mode = _TAG_MODES[inner.read_bit()]
        return site, mode, _read_segments(inner)

    result = decode_guarded(read, reader, "state frame")
    finish_decode(reader, "state frame")
    return result
