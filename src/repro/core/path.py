"""PosID paths: the dense identifier space of Treedoc (section 3.1).

A PosID is a path in the *extended binary tree*: a sequence of elements,
each a branch bit (0 = left, 1 = right) optionally tagged with a
disambiguator. A disambiguator appears on the last element (naming the
target mini-node) and on any interior element whose *next* element
descends through that mini-node's own children rather than through the
major node's children.

Total order
-----------

The order is the infix walk the paper describes: at every major node,

    left child  <  mini-nodes (in disambiguator order, each with its own
    left subtree, atom, right subtree)  <  right child.

Element-wise this means comparing two paths position by position:

- different branch bits: the bit decides (0 < 1);
- same bit, both disambiguated: the disambiguators decide (equal
  disambiguators: keep walking);
- same bit, both plain: keep walking;
- same bit, exactly one disambiguated: the plain path routes through the
  *major* node, so whether it falls before or after the mini-node's
  subtree depends on where it goes next: if the plain path next descends
  left (or ends), it precedes everything under the mini-node; if it next
  descends right, it follows everything under the mini-node.

If one path is a strict prefix of the other, the longer path's next bit
decides (a left descent precedes the ancestor atom, a right descent
follows it).

The paper's formal comparison (section 3.1) orders same-bit plain vs
disambiguated elements unconditionally (``0 < (0:d)``, ``(1:d) < 1``);
read literally that contradicts both Algorithm 1 (rules 5/7 strip the
disambiguator of ``PosID_p`` yet must produce an identifier *after*
``p``) and the stated infix walk. The "next bit decides" rule above is
the unique refinement under which every rule of Algorithm 1 preserves
betweenness; property tests in ``tests/core/test_path_properties.py``
machine-check totality and betweenness. See DESIGN.md section 3.1.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.disambiguator import Disambiguator, Sdis, Udis
from repro.errors import PathError

# Branch-bit constants, for readability at call sites.
LEFT = 0
RIGHT = 1


class PathElement:
    """One step of a PosID path: a branch bit plus optional disambiguator.

    A ``__slots__`` value class: remote ``materialize``/``lookup`` walk
    one element per tree level, so element construction and attribute
    access sit on the replay hot path and per-replica memory scales with
    the number of stored elements.
    """

    __slots__ = ("bit", "dis")

    def __init__(self, bit: int, dis: Optional[Disambiguator] = None) -> None:
        if bit != LEFT and bit != RIGHT:
            raise PathError(f"branch bit must be 0 or 1, got {bit!r}")
        self.bit = bit
        self.dis = dis

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathElement):
            return NotImplemented
        return self.bit == other.bit and self.dis == other.dis

    def __hash__(self) -> int:
        return hash((self.bit, self.dis))

    @property
    def is_disambiguated(self) -> bool:
        """True when this element carries a disambiguator."""
        return self.dis is not None

    def plain(self) -> "PathElement":
        """This element with the disambiguator removed."""
        if self.dis is None:
            return self
        return PathElement(self.bit)

    @property
    def size_bits(self) -> int:
        """Encoded size: branch bit + presence flag + disambiguator."""
        dis_bits = self.dis.size_bits if self.dis is not None else 0
        return 2 + dis_bits

    def __repr__(self) -> str:
        if self.dis is None:
            return str(self.bit)
        return f"({self.bit}:{self.dis!r})"


# Comparison outcome constants.
_LT, _EQ, _GT = -1, 0, 1


def _element_span(element: PathElement, next_bit: Optional[int]) -> tuple:
    """Rank of an element among same-position alternatives.

    Returns a tuple ``(rank, dis_key)`` ordered so that, within one branch
    bit: plain-going-left-or-ending < every disambiguated element (by
    disambiguator) < plain-going-right. ``next_bit`` is the following
    element's branch bit, or None when this element ends the path.
    """
    if element.dis is not None:
        return (1, element.dis.sort_key())
    if next_bit == RIGHT:
        return (2, ())
    return (0, ())


def compare_posids(a: "PosID", b: "PosID") -> int:
    """Three-way comparison of two PosIDs; total order (see module doc).

    Compares the packed :meth:`PosID.sort_key` flat-integer keys — one
    C-level tuple comparison instead of a Python loop over elements.
    :func:`compare_posids_walk` is the element-by-element reference
    implementation; the property tests machine-check their equivalence.
    """
    ka, kb = a.sort_key(), b.sort_key()
    if ka == kb:
        return _EQ
    return _LT if ka < kb else _GT


def compare_posids_walk(a: "PosID", b: "PosID") -> int:
    """Element-by-element reference comparison (see module doc)."""
    ea, eb = a.elements, b.elements
    la, lb = len(ea), len(eb)
    common = min(la, lb)
    for i in range(common):
        xa, xb = ea[i], eb[i]
        if xa.bit != xb.bit:
            return _LT if xa.bit < xb.bit else _GT
        if xa.dis is None and xb.dis is None:
            continue
        if xa.dis is not None and xb.dis is not None:
            ka, kb = xa.dis.sort_key(), xb.dis.sort_key()
            if ka == kb:
                continue
            return _LT if ka < kb else _GT
        # Exactly one side is disambiguated: rank by where each goes next.
        na = ea[i + 1].bit if i + 1 < la else None
        nb = eb[i + 1].bit if i + 1 < lb else None
        sa, sb = _element_span(xa, na), _element_span(xb, nb)
        if sa == sb:  # pragma: no cover - spans with one plain side differ
            continue
        return _LT if sa < sb else _GT
    if la == lb:
        return _EQ
    # One path is a prefix of the other: the continuation's bit decides.
    if la < lb:
        return _LT if eb[common].bit == RIGHT else _GT
    return _GT if ea[common].bit == RIGHT else _LT


class PosID:
    """An immutable position identifier: a sequence of path elements.

    PosIDs are totally ordered (``<`` etc.), hashable, and report their
    encoded size in bits for the overhead metrics of section 5.

    Ordering compares *packed keys* (:meth:`sort_key`): a flat tuple of
    small integers whose lexicographic order equals the infix order
    above, computed once per identifier and cached.
    """

    __slots__ = ("_elements", "_hash", "_key")

    def __init__(self, elements: Iterable[PathElement] = ()) -> None:
        elems = tuple(elements)
        for elem in elems:
            if not isinstance(elem, PathElement):
                raise PathError(f"not a PathElement: {elem!r}")
        self._elements: Tuple[PathElement, ...] = elems
        self._hash: Optional[int] = None
        self._key: Optional[Tuple[int, ...]] = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_bits(cls, bits: Sequence[int],
                  final_dis: Optional[Disambiguator] = None) -> "PosID":
        """Build a PosID from plain branch bits, optionally disambiguating
        the final element (the common shape produced by Algorithm 1)."""
        elems = [PathElement(b) for b in bits]
        if final_dis is not None:
            if not elems:
                raise PathError("cannot disambiguate an empty path")
            elems[-1] = PathElement(elems[-1].bit, final_dis)
        return cls(elems)

    def child(self, bit: int, dis: Optional[Disambiguator] = None) -> "PosID":
        """This path extended by one element."""
        return PosID(self._elements + (PathElement(bit, dis),))

    def with_last_plain(self) -> "PosID":
        """This path with the final element's disambiguator stripped
        (the ``c1 … pn`` rewriting used by rules 4, 5 and 7)."""
        if not self._elements:
            raise PathError("empty path has no last element")
        return PosID(self._elements[:-1] + (self._elements[-1].plain(),))

    # -- basic accessors -----------------------------------------------------

    @property
    def elements(self) -> Tuple[PathElement, ...]:
        """The path elements, root-most first."""
        return self._elements

    @property
    def depth(self) -> int:
        """Number of elements (tree depth of the identified node)."""
        return len(self._elements)

    @property
    def last(self) -> PathElement:
        """The final element."""
        if not self._elements:
            raise PathError("empty path has no last element")
        return self._elements[-1]

    @property
    def parent(self) -> "PosID":
        """The path with the final element removed."""
        if not self._elements:
            raise PathError("empty path has no parent")
        return PosID(self._elements[:-1])

    def bits(self) -> Tuple[int, ...]:
        """The branch bits only (the binary-tree skeleton position)."""
        return tuple(e.bit for e in self._elements)

    @property
    def size_bits(self) -> int:
        """Encoded size in bits: per element, a branch bit plus a
        disambiguator-presence flag, plus the disambiguator payloads."""
        return sum(e.size_bits for e in self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[PathElement]:
        return iter(self._elements)

    def __getitem__(self, index):
        return self._elements[index]

    # -- structural relations (section 3.1 definitions) ----------------------

    def is_prefix_of(self, other: "PosID") -> bool:
        """Strict structural prefix: every element equal, self shorter."""
        if len(self) >= len(other):
            return False
        return self._elements == other._elements[: len(self)]

    def is_ancestor_of(self, other: "PosID") -> bool:
        """``self /+ other``: self routes to a node on other's path.

        Matches the paper's ancestry: the final element of ``self`` may be
        disambiguated while ``other`` routes through the corresponding
        major node (plain element), or vice versa; interior elements must
        agree exactly (a different interior disambiguator is a different
        subtree).
        """
        n = len(self)
        if n >= len(other):
            return False
        if self._elements[: n - 1] != other._elements[: n - 1]:
            return False
        mine, theirs = self._elements[n - 1], other._elements[n - 1]
        if mine.bit != theirs.bit:
            return False
        if mine.dis is None or theirs.dis is None:
            return True
        return mine.dis == theirs.dis

    def is_mini_sibling_of(self, other: "PosID") -> bool:
        """True when both paths name mini-nodes of the same major node."""
        if len(self) != len(other) or not self._elements:
            return False
        if self._elements[:-1] != other._elements[:-1]:
            return False
        mine, theirs = self._elements[-1], other._elements[-1]
        return (
            mine.dis is not None
            and theirs.dis is not None
            and mine.bit == theirs.bit
            and mine.dis != theirs.dis
        )

    # -- ordering ------------------------------------------------------------

    def sort_key(self) -> Tuple[int, ...]:
        """The packed compare key: a flat tuple of small integers whose
        lexicographic order equals the infix identifier order.

        Encoding, per element: ``2*bit`` followed by a *span rank* —
        ``0`` for a plain element continuing left (or ending), ``1``
        for a disambiguated element (followed by the disambiguator's
        ``(counter, site)`` ints), ``2`` for a plain element continuing
        right — and a terminal ``1`` closing the path. The terminal
        sorts between left-continuations (first token ``0``) and
        right-continuations (first token ``2``), which realizes the
        "next bit decides" prefix rule; the span ranks realize the
        plain-vs-disambiguated refinement (see the module doc and
        DESIGN.md section 3.1). Streams stay token-aligned until the
        first difference, so flat packing is safe.
        """
        key = self._key
        if key is None:
            parts: List[int] = []
            elems = self._elements
            n = len(elems)
            for i, element in enumerate(elems):
                parts.append(element.bit << 1)
                dis = element.dis
                if dis is not None:
                    parts.append(1)
                    parts.extend(dis.key)
                elif i + 1 < n and elems[i + 1].bit == RIGHT:
                    parts.append(2)
                else:
                    parts.append(0)
            parts.append(1)
            key = tuple(parts)
            self._key = key
        return key

    def __lt__(self, other: "PosID") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "PosID") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "PosID") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "PosID") -> bool:
        return self.sort_key() >= other.sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PosID):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.sort_key())
        return self._hash

    # -- debugging -----------------------------------------------------------

    def __repr__(self) -> str:
        inner = " ".join(repr(e) for e in self._elements)
        return f"[{inner}]"


#: The path to the root major node (the empty bitstring of section 3.1).
ROOT = PosID()


def parse_posid(text: str) -> PosID:
    """Parse the ``repr`` format back into a PosID (testing aid).

    Accepts e.g. ``"[1 0 (0:s3) (1:u2:7)]"`` where ``s<site>`` is an SDIS
    and ``u<counter>:<site>`` a UDIS disambiguator.
    """
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise PathError(f"malformed PosID literal: {text!r}")
    body = text[1:-1].strip()
    if not body:
        return ROOT
    elements = []
    for token in body.split():
        if token in ("0", "1"):
            elements.append(PathElement(int(token)))
            continue
        if not (token.startswith("(") and token.endswith(")")):
            raise PathError(f"malformed path element: {token!r}")
        bit_text, _, dis_text = token[1:-1].partition(":")
        if bit_text not in ("0", "1") or not dis_text:
            raise PathError(f"malformed path element: {token!r}")
        if dis_text.startswith("u"):
            counter_text, _, site_text = dis_text[1:].partition(":")
            dis: Disambiguator = Udis(int(counter_text), int(site_text))
        elif dis_text.startswith("s"):
            dis = Sdis(int(dis_text[1:]))
        else:
            raise PathError(f"malformed disambiguator: {dis_text!r}")
        elements.append(PathElement(int(bit_text), dis))
    return PosID(elements)
