"""Disambiguators: section 3.3 of the paper.

Concurrent inserts at the same tree position create sibling *mini-nodes*
inside one major node; the disambiguator is the unique, ordered tag that
tells them apart. The paper studies two designs:

- **UDIS** (:class:`Udis`): a ``(counter, siteID)`` pair, globally unique.
  Deleted leaves can be discarded immediately because a PosID can never be
  minted twice.
- **SDIS** (:class:`Sdis`): the site identifier alone. Smaller (no
  counter), but the same site can re-mint a PosID after a delete, so
  deleted nodes must be kept as tombstones.

Site identifiers are modelled on the paper's evaluation: 6 bytes (a MAC
address, or a short membership integer widened to the same field). UDIS
counters are 4 bytes (section 5, "We use 6 bytes for site identifiers in
both UDIS and SDIS, and 4 bytes for the UDIS counter").
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.errors import EncodingError

#: Size of a site identifier on the wire and on disk, in bytes (section 5).
SITE_ID_BYTES = 6
#: Size of the UDIS per-site counter, in bytes (section 5).
COUNTER_BYTES = 4

SITE_ID_BITS = SITE_ID_BYTES * 8
COUNTER_BITS = COUNTER_BYTES * 8

#: A site identifier is a small non-negative integer (membership id) or a
#: 48-bit MAC-address-like value; both fit the 6-byte field.
SiteId = int


def validate_site_id(site: SiteId) -> SiteId:
    """Check that ``site`` fits the 6-byte site-identifier field."""
    if not isinstance(site, int) or isinstance(site, bool):
        raise EncodingError(f"site id must be an int, got {site!r}")
    if site < 0 or site >= 1 << SITE_ID_BITS:
        raise EncodingError(f"site id {site} does not fit in {SITE_ID_BYTES} bytes")
    return site


class Udis:
    """Unique disambiguator: ``(counter, siteID)``.

    Ordered by counter first, site second, exactly as in section 3.3.1:
    ``(c1, s1) < (c2, s2) iff c1 < c2 or (c1 = c2 and s1 < s2)``.

    ``key`` holds the precomputed total-order key: comparisons, mini-node
    insertion sorts and packed PosID keys all read the attribute instead
    of building a tuple per call (disambiguators are minted once per
    atom, but compared many times on the materialize/lookup hot path).
    """

    __slots__ = ("counter", "site", "key")

    def __init__(self, counter: int, site: SiteId) -> None:
        validate_site_id(site)
        if counter < 0 or counter >= 1 << COUNTER_BITS:
            raise EncodingError(
                f"UDIS counter {counter} does not fit in {COUNTER_BYTES} bytes"
            )
        self.counter = counter
        self.site = site
        self.key: Tuple[int, int] = (counter, site)

    def sort_key(self) -> tuple:
        """Total-order key; comparable across Udis and Sdis values."""
        # UDIS and SDIS are never mixed inside one document, but giving both
        # a common key shape keeps comparisons total if they ever meet.
        return self.key

    @property
    def size_bits(self) -> int:
        """Encoded size in bits (counter + site id)."""
        return COUNTER_BITS + SITE_ID_BITS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Udis):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __lt__(self, other: "Disambiguator") -> bool:
        return self.key < other.key

    def __le__(self, other: "Disambiguator") -> bool:
        return self.key <= other.key

    def __gt__(self, other: "Disambiguator") -> bool:
        return self.key > other.key

    def __ge__(self, other: "Disambiguator") -> bool:
        return self.key >= other.key

    def __repr__(self) -> str:
        return f"u{self.counter}:{self.site}"


class Sdis:
    """Site disambiguator: the site identifier alone (section 3.3.2)."""

    __slots__ = ("site", "key")

    def __init__(self, site: SiteId) -> None:
        validate_site_id(site)
        self.site = site
        self.key: Tuple[int, int] = (0, site)

    def sort_key(self) -> tuple:
        """Total-order key; see :meth:`Udis.sort_key`."""
        return self.key

    @property
    def size_bits(self) -> int:
        """Encoded size in bits (site id only)."""
        return SITE_ID_BITS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sdis):
            return NotImplemented
        return self.site == other.site

    def __hash__(self) -> int:
        return hash(self.key)

    def __lt__(self, other: "Disambiguator") -> bool:
        return self.key < other.key

    def __le__(self, other: "Disambiguator") -> bool:
        return self.key <= other.key

    def __gt__(self, other: "Disambiguator") -> bool:
        return self.key > other.key

    def __ge__(self, other: "Disambiguator") -> bool:
        return self.key >= other.key

    def __repr__(self) -> str:
        return f"s{self.site}"


Disambiguator = Union[Udis, Sdis]


class DisambiguatorFactory:
    """Mints fresh disambiguators for one site.

    A Treedoc replica owns one factory; its ``mode`` selects the UDIS or
    SDIS design for the whole document (the two are never mixed).
    """

    UDIS = "udis"
    SDIS = "sdis"

    def __init__(self, site: SiteId, mode: str = UDIS) -> None:
        validate_site_id(site)
        if mode not in (self.UDIS, self.SDIS):
            raise ValueError(f"unknown disambiguator mode {mode!r}")
        self.site = site
        self.mode = mode
        self._counter = 0
        # SDIS disambiguators are all identical for one site; mint one
        # immutable instance instead of one per atom.
        self._sdis = Sdis(site) if mode == self.SDIS else None

    def fresh(self) -> Disambiguator:
        """Return the next disambiguator for this site."""
        if self.mode == self.UDIS:
            dis = Udis(self._counter, self.site)
            self._counter += 1
            return dis
        return self._sdis

    @property
    def counter(self) -> int:
        """Current UDIS counter value (number of UDIS minted so far)."""
        return self._counter

    def restore_counter(self, value: int) -> None:
        """Advance the UDIS counter to at least ``value`` (durable
        recovery only). The counter is what makes a UDIS globally
        unique; a restarted site must never re-mint a (counter, site)
        pair from before its crash, so the counter is monotonic — this
        can only move it forward. A no-op for SDIS (site-only tags
        carry no counter: re-minting is what the tombstones absorb)."""
        if value > self._counter:
            self._counter = value
