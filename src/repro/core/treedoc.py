"""The Treedoc document replica: the library's main entry point.

A :class:`Treedoc` is one replica of the shared edit buffer. Local edits
(`insert`, `delete`, `insert_run`) allocate fresh PosIDs and return the
operations to broadcast; remote operations are replayed with ``apply``.
Because the type is a CRDT, replicas that apply the same set of
operations in any happened-before-compatible order converge (section 2.2).

Example
-------

    >>> from repro import Treedoc
    >>> a, b = Treedoc(site=1), Treedoc(site=2)
    >>> op1 = a.insert(0, "hello")
    >>> op2 = b.insert(0, "world")   # concurrent with op1
    >>> a.apply(op2); b.apply(op1)
    >>> a.text() == b.text()
    True
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.alloc import Allocator
from repro.core.array_region import find_collapsible
from repro.core.disambiguator import DisambiguatorFactory, SiteId
from repro.core.flatten import (
    ColdRegionFinder,
    flatten_subtree,
    resolve_region,
    subtree_atoms,
)
from repro.core.node import (
    ArrayLeaf,
    AtomSlot,
    MiniNode,
    PosNode,
    collect_leaf_slots,
    parent_host,
    slot_host,
    slot_is_live,
    slot_posid,
)
from repro.core.ops import (
    DeleteOp,
    FlattenOp,
    InsertOp,
    OpBatch,
    Operation,
    content_digest,
)
from repro.core.path import PosID
from repro.core.tree import TreedocTree, successor_slot
from repro.errors import MissingAtomError, TreeError
from repro.util.text import join_atoms


class Treedoc:
    """One replica of a Treedoc shared buffer.

    Parameters
    ----------
    site:
        This replica's site identifier (6-byte integer space).
    mode:
        ``"udis"`` (default) for unique ``(counter, site)`` disambiguators
        with immediate discard of deleted leaves, or ``"sdis"`` for
        site-only disambiguators with tombstones (section 3.3).
    balanced:
        Enable the section 4.1 allocation balancing (log-growth on
        appends, empty-slot reuse, run grouping).
    collapse_every:
        When set to ``k``, run the mixed-storage collapse pass
        (:meth:`collapse_cold`) every ``k`` revision boundaries
        (:meth:`note_revision`): quiescent canonical regions become
        zero-metadata array leaves, exploded implicitly on touch
        (section 4.2). ``None`` (default) leaves collapse explicit.
    """

    def __init__(self, site: SiteId, mode: str = "udis",
                 balanced: bool = True,
                 collapse_every: Optional[int] = None,
                 collapse_min_age: int = 2,
                 collapse_min_atoms: int = 8) -> None:
        if mode not in (DisambiguatorFactory.UDIS, DisambiguatorFactory.SDIS):
            raise ValueError(f"unknown disambiguator mode {mode!r}")
        if collapse_every is not None and collapse_every < 1:
            raise ValueError("collapse_every must be at least 1")
        self.site = site
        self.mode = mode
        self.tree = TreedocTree()
        self.allocator = Allocator(self.tree, balanced=balanced)
        self.collapse_every = collapse_every
        self.collapse_min_age = collapse_min_age
        self.collapse_min_atoms = collapse_min_atoms
        self._dis_factory = DisambiguatorFactory(site, mode)
        #: Monotonic revision counter used by the cold-region heuristic;
        #: bump with :meth:`note_revision` at workload-revision boundaries.
        self.revision = 0
        self._touch_stamps: Dict[int, int] = {}
        #: Nodes stamped during the current revision, keyed by id with a
        #: strong reference: the reference keeps a pruned node alive
        #: until the revision boundary, so an id() can never be reused
        #: (and mistaken for "already stamped") within one revision.
        self._touch_seen: Dict[int, object] = {}
        #: Local operation counter: every locally generated insert and
        #: delete claims one sequence number, so the batches this
        #: replica mints carry non-overlapping, increasing seq ranges.
        self._op_seq = 0
        #: Last rendered text, keyed by (generation, separator).
        self._text_cache: Optional[tuple] = None
        #: Touch log for the incremental auto-collapse sweep: id ->
        #: position node touched since the last sweep (populated only
        #: when ``collapse_every`` is configured). Strong references,
        #: like ``_touch_seen``: a pruned node's id must not be recycled
        #: and mistaken for a pending live node.
        self._sweep_pending: Dict[int, PosNode] = {}
        #: Re-collapse hysteresis: region branch bits -> [explosion
        #: count, revision of the last explosion]. Bounded by
        #: ``_HISTORY_LIMIT``; entries decay once a region stays quiet
        #: past its damped window (see :meth:`_required_age`).
        self._explode_history: Dict[tuple, List[int]] = {}
        #: The first auto-collapse boundary (and the first after a state
        #: swap) must scan the whole tree — the touch log only covers
        #: edits made since it started recording.
        self._needs_full_sweep = True
        # Weak, and a *plain* weakref (gc-opaque — ``WeakMethod`` leaks
        # its module globals through ``gc.get_referents``): the tree
        # must not reference its owning document — a tree-rooted
        # reachability walk (resident-byte accounting, serializers)
        # would otherwise pull in the whole facade, and husk trees
        # would pin dead documents alive.
        self.tree._explode_listener = weakref.ref(self)

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.tree.live_length

    @property
    def generation(self) -> int:
        """Monotonic counter of visible-content changes (downstream
        layers key derived caches — text, editor lines, snapshots —
        on it)."""
        return self.tree.generation

    @property
    def op_seq(self) -> int:
        """Next unclaimed local operation sequence number. Durable
        recovery persists and restores it (:meth:`restore_op_seq`), so
        the batches a restarted replica mints can never reuse a seq
        range from before the crash."""
        return self._op_seq

    def restore_op_seq(self, value: int) -> None:
        """Advance the local sequence counter to at least ``value``
        (recovery only — the counter is monotonic, never rewound)."""
        if value > self._op_seq:
            self._op_seq = value

    @property
    def dis_counter(self) -> int:
        """The UDIS mint counter (0 for SDIS documents). Persisted by
        the durable store alongside :attr:`op_seq`: identifier identity
        across a crash depends on never re-minting a (counter, site)
        pair."""
        return self._dis_factory.counter

    def restore_dis_counter(self, value: int) -> None:
        """Advance the UDIS mint counter to at least ``value``
        (recovery only; no-op for SDIS)."""
        self._dis_factory.restore_counter(value)

    def atoms(self) -> List[object]:
        """The visible document as a list of atoms (amortized O(n) copy
        off the tree's live-snapshot cache)."""
        return self.tree.atoms()

    def text(self, separator: str = "") -> str:
        """The visible document as a string (atoms joined).

        Cached against the tree generation, and joined without per-atom
        ``str()`` calls when every atom already is one (character and
        paragraph documents — the common case).
        """
        cached = self._text_cache
        generation = self.tree.generation
        if (
            cached is not None
            and cached[0] == generation
            and cached[1] == separator
        ):
            return cached[2]
        text = join_atoms(separator, self.tree.atoms())
        self._text_cache = (generation, separator, text)
        return text

    def posid_at(self, index: int) -> PosID:
        """PosID of the visible atom at ``index`` (a pure read: served
        from a collapsed region's implied paths without exploding)."""
        return self.tree.live_posid_at(index)

    def atom_at(self, index: int) -> object:
        """The visible atom at ``index`` (a pure read: served from a
        collapsed region's array without exploding)."""
        return self.tree.live_atom_at(index)

    def posids(self) -> List[PosID]:
        """PosIDs of all visible atoms, in document order."""
        return self.tree.posids()

    @property
    def keeps_tombstones(self) -> bool:
        """True under SDIS, where deleted identifiers stay used."""
        return self.mode == DisambiguatorFactory.SDIS

    # -- local edits ---------------------------------------------------------------

    def insert(self, index: int, atom: object) -> InsertOp:
        """Insert ``atom`` so it becomes the visible atom at ``index``.

        Returns the operation to broadcast to other replicas.
        """
        p_slot, f_slot = self._neighbours(index)
        self._claim_seqs(1)
        slot = self.allocator.place_between(p_slot, f_slot,
                                            self._dis_factory.fresh())
        self.tree.set_live(slot, atom)
        posid = slot_posid(slot)
        self._touch(slot)
        return InsertOp(posid, atom, self.site)

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert a consecutive run of atoms starting at ``index``;
        returns one :class:`OpBatch` to broadcast.

        This is the batch fast path: with balancing enabled the run is
        grouped into one minimal subtree (section 5.1's balancing
        variant), and the live-index/length bookkeeping is deferred to
        the end of the batch instead of being maintained per atom.
        """
        atoms = list(atoms)
        if not atoms:
            return OpBatch.build((), self.site, self._claim_seqs(0))
        p_slot, f_slot = self._neighbours(index)
        # Sequence numbers claim only after validation: a failed edit
        # must not leave a gap in this origin's batch seq ranges.
        seq_start = self._claim_seqs(len(atoms))
        dises = [self._dis_factory.fresh() for _ in atoms]
        slots = self.allocator.place_run(p_slot, f_slot, dises)
        ops: List[InsertOp] = []
        self.tree.begin_bulk()
        # The run's atoms become the live range starting at ``index``:
        # the cache splices there without per-slot rank queries.
        self.tree.hint_bulk_added_at(index)
        try:
            for slot, atom in zip(slots, atoms):
                self.tree.set_live(slot, atom)
                ops.append(InsertOp(slot_posid(slot), atom, self.site))
        finally:
            self.tree.end_bulk()
        self._touch_many(slots)
        return OpBatch.build(ops, self.site, seq_start)

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[InsertOp]:
        """Insert a consecutive run of atoms starting at ``index``.

        Compatibility wrapper over :meth:`insert_text`, returning the
        batch's operations as a list.
        """
        return list(self.insert_text(index, atoms).ops)

    def delete(self, index: int) -> DeleteOp:
        """Delete the visible atom at ``index``; returns the operation."""
        slot = self.tree.live_slot_at(index)
        self._claim_seqs(1)
        posid = slot_posid(slot)
        self._touch(slot)
        if self.keeps_tombstones:
            self.tree.make_tombstone(slot)
        else:
            self.tree.discard(slot)
        return DeleteOp(posid, self.site)

    def delete_range(self, start: int, end: int) -> OpBatch:
        """Delete the visible atoms in ``[start, end)``; returns one
        :class:`OpBatch` to broadcast.

        The range is resolved once — a slice of the live-snapshot cache
        when valid, else an index descent for ``start`` plus successor
        walks — instead of re-resolving a live index per deleted atom,
        and count maintenance is deferred to batch end.
        """
        length = self.tree.live_length
        if not 0 <= start <= end <= length:
            raise IndexError(f"range [{start}, {end}) out of range 0..{length}")
        count = end - start
        seq_start = self._claim_seqs(count)
        if count == 0:
            return OpBatch.build((), self.site, seq_start)
        slots = self.tree.live_slice(start, end)
        sliced = slots is not None
        if slots is None:
            slot: Optional[AtomSlot] = self.tree.live_slot_at(start)
            slots = [slot]
            while len(slots) < count:
                slot = successor_slot(slot)
                while slot is not None and not slot_is_live(slot):
                    slot = successor_slot(slot)
                if slot is None:
                    raise TreeError("live count out of sync with slot walk")
                slots.append(slot)
        ops = tuple(DeleteOp(slot_posid(s), self.site) for s in slots)
        self._touch_many(slots)
        self.tree.begin_bulk()
        if sliced:
            # The removals are exactly [start, end): the cache can
            # splice instead of compacting at end_bulk.
            self.tree.hint_bulk_removed_range(start, end)
        try:
            for s in slots:
                if self.keeps_tombstones:
                    self.tree.make_tombstone(s)
                else:
                    self.tree.discard(s)
        finally:
            self.tree.end_bulk()
        return OpBatch.build(ops, self.site, seq_start)

    def replace_range(self, start: int, end: int,
                      atoms: Sequence[object]) -> OpBatch:
        """Replace ``[start, end)`` by ``atoms`` (a modify: delete +
        insert, the paper's model of modification); returns one batch
        covering both halves."""
        deleted = self.delete_range(start, end)
        inserted = self.insert_text(start, atoms)
        return deleted.merge(inserted)

    def delete_posid(self, posid: PosID) -> DeleteOp:
        """Delete by identifier (initiator must hold the atom)."""
        slot = self.tree.lookup(posid)
        if slot is None or slot.state != "live":
            raise MissingAtomError(f"no live atom at {posid!r}")
        self._claim_seqs(1)
        self._touch(slot)
        if self.keeps_tombstones:
            self.tree.make_tombstone(slot)
        else:
            self.tree.discard(slot)
        return DeleteOp(posid, self.site)

    # -- remote replay ----------------------------------------------------------------

    def apply(self, op: Operation) -> None:
        """Replay a (remote) operation or batch. Operations must arrive
        in an order compatible with happened-before; the replication
        layer's causal broadcast guarantees it."""
        if isinstance(op, OpBatch):
            self.apply_batch(op)
        elif isinstance(op, InsertOp):
            slot = self.tree.apply_insert(op.posid, op.atom)
            self._touch(slot)
        elif isinstance(op, DeleteOp):
            slot = self.tree.apply_delete(
                op.posid, keep_tombstone=self.keeps_tombstones
            )
            if slot is not None:
                self._touch(slot)
        elif isinstance(op, FlattenOp):
            self.apply_flatten(op)
        else:
            raise TreeError(f"unknown operation {op!r}")

    def apply_batch(self, batch: OpBatch) -> None:
        """Replay a remote batch with deferred index maintenance.

        Semantically identical to applying the batch's operations one by
        one, but per-operation spine walks (live/id count propagation
        and cold-region touch stamps) are coalesced: shared ancestors
        are visited once per batch instead of once per operation.
        Flatten operations flush the bulk section around themselves,
        since they recount structure.
        """
        ops = batch.ops if isinstance(batch, OpBatch) else tuple(batch)
        if len(ops) <= 1:
            for op in ops:
                self.apply(op)
            return
        touched: List[AtomSlot] = []
        self.tree.begin_bulk()
        try:
            for op in ops:
                if isinstance(op, InsertOp):
                    touched.append(self.tree.apply_insert(op.posid, op.atom))
                elif isinstance(op, DeleteOp):
                    slot = self.tree.apply_delete(
                        op.posid, keep_tombstone=self.keeps_tombstones
                    )
                    if slot is not None:
                        touched.append(slot)
                elif isinstance(op, FlattenOp):
                    self.tree.end_bulk()
                    self._touch_many(touched)
                    touched = []
                    self.apply_flatten(op)
                    self.tree.begin_bulk()
                else:
                    raise TreeError(f"unknown operation {op!r}")
        finally:
            self.tree.end_bulk()
        self._touch_many(touched)

    def apply_all(self, ops: Iterable[Operation]) -> None:
        """Replay a sequence of operations (or batches)."""
        for op in ops:
            self.apply(op)

    # -- flatten (section 4.2) -----------------------------------------------------------

    def make_flatten(self, path: PosID,
                     carry_atoms: bool = False) -> FlattenOp:
        """Build a flatten operation for the subtree at ``path`` from this
        replica's current state (used by the commitment initiator)."""
        node = resolve_region(self.tree, path)
        atoms = tuple(subtree_atoms(node))
        return FlattenOp(
            path,
            content_digest(atoms),
            self.site,
            expected_atoms=atoms if carry_atoms else None,
        )

    def apply_flatten(self, op: FlattenOp) -> List[object]:
        """Apply a committed flatten: rebuild the subtree canonically.

        Verifies the initiator's content digest; a mismatch means the
        commitment protocol admitted a concurrent edit and is a bug.
        The verification walk's atoms feed the rebuild directly — one
        region walk and one digest per application.
        """
        node = resolve_region(self.tree, op.path)
        atoms = subtree_atoms(node)
        if content_digest(tuple(atoms)) != op.digest:
            raise TreeError(
                "flatten content mismatch: concurrent edit slipped past "
                "the commitment protocol"
            )
        result = flatten_subtree(self.tree, op.path, atoms=atoms)
        self._touch_region(op.path)
        return result

    def flatten_local(self, path: PosID) -> FlattenOp:
        """Initiate-and-apply a flatten locally (single-replica use, e.g.
        trace replay benchmarks; distributed use goes through
        :mod:`repro.replication.commit`).

        The initiator just computed the digest from this very state, so
        the region is walked and digested once, not re-verified against
        itself.
        """
        node = resolve_region(self.tree, path)
        atoms = subtree_atoms(node)
        op = FlattenOp(path, content_digest(tuple(atoms)), self.site)
        flatten_subtree(self.tree, path, atoms=atoms)
        self._touch_region(path)
        return op

    def flatten_cold(self, min_age: int = 1, min_slots: int = 4,
                     min_depth: int = 1) -> Optional[FlattenOp]:
        """Find the largest cold region and flatten it locally.

        Returns the operation, or None when nothing qualifies.
        ``min_depth`` > 1 emulates the paper's weaker partial heuristic
        (see :class:`repro.core.flatten.ColdRegionFinder`).
        """
        finder = ColdRegionFinder(min_age=min_age, min_slots=min_slots,
                                  min_depth=min_depth)
        path = finder.find(self.tree, self._touch_stamps, self.revision)
        if path is None:
            return None
        return self.flatten_local(path)

    def note_revision(self) -> int:
        """Mark a workload-revision boundary for the cold-region clock.

        When ``collapse_every`` is configured, every ``k``-th boundary
        also runs the mixed-storage collapse pass — the revision
        boundary is where quiescence is defined (the stamps are
        revision-granular), and it sits outside any bulk section, so the
        deferred pass composes with batch flushes the same way count
        propagation does.
        """
        self.revision += 1
        self._touch_seen.clear()
        if self.collapse_every and self.revision % self.collapse_every == 0:
            if self._needs_full_sweep:
                self.collapse_cold()
            else:
                self._collapse_cold_incremental()
        return self.revision

    # -- mixed storage (section 4.2) ---------------------------------------------

    def collapse_cold(self, min_age: Optional[int] = None,
                      min_atoms: Optional[int] = None) -> List[PosID]:
        """Collapse every cold canonical region into an array leaf.

        Purely local — the canonical shape makes a later implicit
        explode rebuild the identical structure, so no replicated
        operation exists and replicas may collapse independently
        (section 4.2.1). Under SDIS, stable-tombstone slots are folded
        into the leaf's dead bitmap instead of blocking the collapse.
        Regions that recently exploded are withheld until they have
        stayed cold for their damped window (:meth:`_required_age`), so
        a ping-ponging hot boundary does not thrash collapse/explode.
        Returns the collapsed regions' plain paths.
        """
        base_age = self.collapse_min_age if min_age is None else min_age
        if min_age is None and min_atoms is None:
            # A full default-parameter pass re-baselines the incremental
            # sweep: everything cold as of now is handled (collapsed or
            # re-queued below). Still-warm pending entries must survive
            # the baseline — they are not cold yet, so this scan will
            # not touch them, and nothing later would re-queue a region
            # that simply goes quiet.
            self._needs_full_sweep = False
            stamps = self._touch_stamps
            self._sweep_pending = {
                key: node for key, node in self._sweep_pending.items()
                if (stamp := stamps.get(id(node))) is not None
                and self.revision - stamp < base_age
            }
        withhold = None
        if self._explode_history:
            def withhold(bits, node, age):
                if age >= self._required_age(bits, base_age):
                    return False
                if self.collapse_every is not None:
                    # Revisit once the damped window has passed — the
                    # region stays quiet, so no touch would re-queue it.
                    self._sweep_pending[id(node)] = node
                return True
        regions = find_collapsible(
            self.tree,
            self._touch_stamps,
            self.revision,
            min_age=base_age,
            min_atoms=(
                self.collapse_min_atoms if min_atoms is None else min_atoms
            ),
            allow_tombstones=self.keeps_tombstones,
            withhold=withhold,
        )
        for _, node, atoms, dead in regions:
            self._purge_region_stamps(node)
            self.tree.collapse_subtree(node, atoms=atoms, dead=dead)
        return [path for path, _, _, _ in regions]

    def _collapse_cold_incremental(self) -> List[PosID]:
        """The auto-collapse sweep, in O(touched regions): instead of
        re-scanning the whole tree (:func:`find_collapsible`), climb
        from the nodes touched since the last sweep (``_sweep_pending``)
        to their highest cold, plain-attached ancestors and harvest
        canonical pockets inside those candidates only.

        Correct because every touch stamps its full spine
        (:meth:`_touch`), so a node's own stamp bounds its subtree's
        newest stamp and coldness is judged from region roots alone; and
        because anything cold at the last full pass was collapsed or
        re-queued then — a region cannot go cold unobserved.
        """
        stamps = self._touch_stamps
        revision = self.revision
        base_age = self.collapse_min_age
        root = self.tree.root
        pending = self._sweep_pending
        keep: Dict[int, PosNode] = {}
        candidates: Dict[int, PosNode] = {}
        for key, node in pending.items():
            st = stamps.get(id(node))
            if st is not None and revision - st < base_age:
                keep[key] = node  # still warm: revisit next sweep
                continue
            if node is root:
                # A whole-document rebuild queues the root (there is no
                # higher region): scan from it, pockets only — the root
                # itself never collapses (full-pass parity).
                candidates[id(root)] = root
                continue
            current = node
            region = None
            while current is not root:
                parent = current.parent
                if parent is None:
                    region = None  # floating husk: nothing here is live
                    break
                container, bit = parent
                if isinstance(container, MiniNode):
                    if container.child(bit) is not current:
                        region = None
                    # A mini link: every ancestor holds a mini-node and
                    # can never be canonical — stop climbing.
                    break
                if container.child(bit) is not current:
                    # Pruned/collapsed/flattened away: what was found so
                    # far is outside the tree, but the container itself
                    # may still be a live cold region — restart there.
                    region = None
                    current = container
                    continue
                st = stamps.get(id(current))
                if st is not None and revision - st < base_age:
                    break  # warm ancestor: the maximal cold region is below
                region = current
                current = container
            if region is not None:
                candidates[id(region)] = region
        self._sweep_pending = keep
        collapsed: List[PosID] = []
        min_atoms = self.collapse_min_atoms
        allow_tombstones = self.keeps_tombstones
        for region in candidates.values():
            if region is root:
                stack = [child for child in (root.left, root.right)
                         if child is not None
                         and type(child) is not ArrayLeaf]
            else:
                parent = region.parent
                if parent is None:
                    continue
                container, bit = parent
                if container.child(bit) is not region:
                    continue  # detached by an earlier collapse this pass
                # Descend for canonical pockets: the region is cold but
                # may be hot-shaped (same rule as the full scan).
                stack = [region]
            while stack:
                node = stack.pop()
                harvest = collect_leaf_slots(node, min_atoms,
                                             allow_tombstones)
                if harvest is None:
                    for child in (node.left, node.right):
                        if child is not None and type(child) is not ArrayLeaf:
                            stack.append(child)
                    continue
                posid = slot_posid(node)
                if self._explode_history:
                    st = stamps.get(id(node))
                    age = revision - st if st is not None else revision + 1
                    if age < self._required_age(posid.bits(), base_age):
                        # Damped: revisit once the extra coldness accrues.
                        self._sweep_pending[id(node)] = node
                        continue
                atoms, dead = harvest
                self._purge_region_stamps(node)
                self.tree.collapse_subtree(node, atoms=atoms, dead=dead)
                collapsed.append(posid)
        return collapsed

    #: Hysteresis caps: the damped window doubles per recorded explosion
    #: up to ``min_age << _DAMP_LIMIT``; at most ``_HISTORY_LIMIT``
    #: regions are tracked (stalest evicted first).
    _DAMP_LIMIT = 6
    _HISTORY_LIMIT = 64

    def _on_explode(self, node: PosNode) -> None:
        """Tree callback fired after a collapsed leaf explodes back to
        tree form: feed the re-collapse hysteresis (the region just
        proved it was not cold) and queue it for the incremental
        sweep."""
        bits = slot_posid(node).bits()
        history = self._explode_history
        entry = history.get(bits)
        if entry is not None:
            if entry[0] < self._DAMP_LIMIT:
                entry[0] += 1
            entry[1] = self.revision
        else:
            if len(history) >= self._HISTORY_LIMIT:
                del history[min(history, key=lambda k: history[k][1])]
            history[bits] = [1, self.revision]
        if self.collapse_every is not None:
            self._sweep_pending[id(node)] = node

    def _required_age(self, bits: tuple, base: int) -> int:
        """Re-collapse hysteresis: the coldness (in revisions) the
        region at ``bits`` must show before collapsing again. Each
        recorded explosion of an overlapping region (ancestor or
        descendant — collapse granularity shifts, so keys are matched on
        their mutual prefix) doubles the requirement; records decay once
        the region stays quiet past its own damped window."""
        required = base
        history = self._explode_history
        revision = self.revision
        for key in list(history):
            count, last = history[key]
            if revision - last > (base << (count + 1)):
                del history[key]
                continue
            shorter = len(key) if len(key) < len(bits) else len(bits)
            if key[:shorter] == bits[:shorter]:
                age = base << count
                if age > required:
                    required = age
        return required

    def _purge_region_stamps(self, node) -> None:
        """Drop cold-clock bookkeeping for a subtree about to be freed
        (collapse replaces it with an array leaf): stale ``id()`` keys
        must not linger in ``_touch_stamps`` or ``_sweep_pending``, and
        ``_touch_seen`` must not keep the dead nodes alive until the
        next revision."""
        stamps = self._touch_stamps
        seen = self._touch_seen
        pending = self._sweep_pending
        for freed in node.iter_nodes():
            key = id(freed)
            stamps.pop(key, None)
            seen.pop(key, None)
            pending.pop(key, None)

    @property
    def array_leaf_count(self) -> int:
        """Collapsed quiescent regions currently held as arrays."""
        return len(self.tree.array_leaves())

    # -- state transfer (anti-entropy catch-up) ----------------------------------

    def capture_state(self) -> "DocumentState":
        """Snapshot the whole document as one v2 state frame.

        Collapsed regions — and quiescent subtrees still in canonical
        tree form — travel as run segments (base path + atoms, zero
        per-atom identifiers); everything else as singleton records.
        The frame is digest-stamped, so :meth:`load_state` verifies
        transport integrity.
        """
        from repro.core.encoding import encode_state
        from repro.core.runs import iter_state_segments

        segments = iter_state_segments(self.tree, self.site)
        digest = content_digest(tuple(self.tree.atoms()))
        return encode_state(segments, self.mode, self.site, digest)

    def load_state(self, state: "DocumentState") -> int:
        """Replace this replica's document with a state snapshot.

        Run segments load **directly into array leaves** — the cold
        receiver never materializes per-atom structure for quiescent
        regions, and is identifier-identical to the source from the
        first read. Returns the number of visible atoms loaded. The
        caller owns the causal safety argument (the snapshot must
        dominate this replica's state — see
        :meth:`repro.replication.site.ReplicaSite.sync_from`).
        """
        from repro.core.encoding import decode_state
        from repro.core.runs import load_state_segments
        from repro.errors import SyncError

        if state.mode != self.mode:
            raise SyncError(
                f"state snapshot is {state.mode}, this replica is {self.mode}"
            )
        _, _, segments = decode_state(state)
        fresh = TreedocTree()
        load_state_segments(fresh, segments,
                            keep_tombstones=self.keeps_tombstones)
        atoms = tuple(fresh.atoms())
        if content_digest(atoms) != state.digest:
            raise SyncError(
                "state snapshot digest mismatch: corrupted in transport?"
            )
        # Generations must keep increasing monotonically across the
        # swap, or downstream caches keyed on (generation, ...) could
        # serve the pre-sync document.
        fresh._generation = self.tree.generation + 1
        fresh._explode_listener = weakref.ref(self)
        self.tree = fresh
        self.allocator = Allocator(fresh, balanced=self.allocator.balanced)
        self._touch_stamps = {}
        self._touch_seen = {}
        self._sweep_pending = {}
        self._explode_history = {}
        self._needs_full_sweep = True
        self._text_cache = None
        return len(atoms)

    def merge_segments(self, segments, skip: frozenset = frozenset()) -> int:
        """Join state segments into this replica's document in place.

        The delta-anti-entropy receiver half: segments cover only the
        regions the sender believes this replica is missing, and merge
        as a CRDT join — duplicates are idempotent, tombstone records
        apply like replayed deletes, and local atoms the sender never
        saw survive. ``skip`` names identifiers deleted here whose
        delete the sender may not have seen (re-inserting them would
        resurrect a discarded atom). The caller owns the causal safety
        argument (see
        :meth:`repro.replication.site.ReplicaSite._apply_sync_delta`).
        Returns the number of atoms newly placed live.
        """
        from repro.core.runs import merge_state_segments

        self.tree.begin_bulk()
        try:
            applied, touched = merge_state_segments(
                self.tree, segments, self.keeps_tombstones, skip
            )
        finally:
            self.tree.end_bulk()
        self._touch_many(touched)
        self._text_cache = None
        return applied

    # -- internals ---------------------------------------------------------------------

    def _claim_seqs(self, count: int) -> int:
        """Reserve ``count`` local sequence numbers; returns the first."""
        start = self._op_seq
        self._op_seq = start + count
        return start

    def _neighbours(self, index: int):
        """Adjacent used identifiers around visible position ``index``
        (DESIGN.md section 3.2: the successor includes tombstones).

        Localized edits resolve in O(1) off the live-snapshot cache, or
        by an edit-finger chain walk when the cache is invalidated —
        both inside :meth:`TreedocTree.live_slot_at` (DESIGN.md
        section 6)."""
        length = self.tree.live_length
        if index < 0 or index > length:
            raise IndexError(f"insert index {index} out of range 0..{length}")
        if index == 0:
            p_slot: Optional[AtomSlot] = None
        else:
            p_slot = self.tree.live_slot_at(index - 1)
        f_slot = self.tree.next_id_holder(p_slot)
        return p_slot, f_slot

    #: Bound on the per-revision stamped-node memo: embeddings that
    #: never call note_revision (plain editors) must not accumulate
    #: strong references forever.
    _TOUCH_SEEN_LIMIT = 8192

    def _touch(self, slot: AtomSlot) -> None:
        """Stamp the position-node spine of ``slot`` with the current
        revision (cold-region bookkeeping).

        Every stamping walks to the root, so a node already stamped
        this revision implies its whole ancestor spine is too — the
        walk stops there, making repeated localized edits within one
        revision O(unstamped spine), not O(depth). The memo holds node
        references, so a pruned node's id cannot be recycled (and
        mistaken for already-stamped) before the revision ends.
        """
        stamps = self._touch_stamps
        seen = self._touch_seen
        if len(seen) > self._TOUCH_SEEN_LIMIT:
            seen.clear()
        revision = self.revision
        node = slot_host(slot)
        if self.collapse_every is not None:
            self._sweep_pending[id(node)] = node
        while node is not None:
            key = id(node)
            if key in seen:
                break
            seen[key] = node
            stamps[key] = revision
            node = parent_host(node)

    def _touch_many(self, slots: Sequence[AtomSlot]) -> None:
        """Batch version of :meth:`_touch`: stamp the spines of many
        slots, stopping at ancestors already stamped with the current
        revision (see :meth:`_touch`)."""
        stamps = self._touch_stamps
        seen = self._touch_seen
        if len(seen) > self._TOUCH_SEEN_LIMIT:
            seen.clear()
        revision = self.revision
        pending = self._sweep_pending if self.collapse_every is not None \
            else None
        for slot in slots:
            node = slot_host(slot)
            if pending is not None:
                pending[id(node)] = node
            while node is not None:
                key = id(node)
                if key in seen:
                    break
                seen[key] = node
                stamps[key] = revision
                node = parent_host(node)

    def _touch_region(self, path: PosID) -> None:
        node = resolve_region(self.tree, path)
        self._touch_stamps[id(node)] = self.revision
        if self.collapse_every is not None:
            self._sweep_pending[id(node)] = node
        self._touch(node)

    # -- diagnostics ------------------------------------------------------------------

    def check(self) -> None:
        """Validate all tree invariants (testing aid)."""
        self.tree.check_invariants()

    def __repr__(self) -> str:
        return (
            f"<Treedoc site={self.site} mode={self.mode} "
            f"atoms={len(self)} ids={self.tree.id_length}>"
        )
