"""The Treedoc document replica: the library's main entry point.

A :class:`Treedoc` is one replica of the shared edit buffer. Local edits
(`insert`, `delete`, `insert_run`) allocate fresh PosIDs and return the
operations to broadcast; remote operations are replayed with ``apply``.
Because the type is a CRDT, replicas that apply the same set of
operations in any happened-before-compatible order converge (section 2.2).

Example
-------

    >>> from repro import Treedoc
    >>> a, b = Treedoc(site=1), Treedoc(site=2)
    >>> op1 = a.insert(0, "hello")
    >>> op2 = b.insert(0, "world")   # concurrent with op1
    >>> a.apply(op2); b.apply(op1)
    >>> a.text() == b.text()
    True
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.alloc import Allocator
from repro.core.disambiguator import DisambiguatorFactory, SiteId
from repro.core.flatten import (
    ColdRegionFinder,
    flatten_subtree,
    resolve_region,
    subtree_atoms,
)
from repro.core.node import AtomSlot, slot_posid
from repro.core.ops import (
    DeleteOp,
    FlattenOp,
    InsertOp,
    Operation,
    content_digest,
)
from repro.core.path import PosID
from repro.core.tree import TreedocTree
from repro.errors import MissingAtomError, TreeError


class Treedoc:
    """One replica of a Treedoc shared buffer.

    Parameters
    ----------
    site:
        This replica's site identifier (6-byte integer space).
    mode:
        ``"udis"`` (default) for unique ``(counter, site)`` disambiguators
        with immediate discard of deleted leaves, or ``"sdis"`` for
        site-only disambiguators with tombstones (section 3.3).
    balanced:
        Enable the section 4.1 allocation balancing (log-growth on
        appends, empty-slot reuse, run grouping).
    """

    def __init__(self, site: SiteId, mode: str = "udis",
                 balanced: bool = True) -> None:
        if mode not in (DisambiguatorFactory.UDIS, DisambiguatorFactory.SDIS):
            raise ValueError(f"unknown disambiguator mode {mode!r}")
        self.site = site
        self.mode = mode
        self.tree = TreedocTree()
        self.allocator = Allocator(self.tree, balanced=balanced)
        self._dis_factory = DisambiguatorFactory(site, mode)
        #: Monotonic revision counter used by the cold-region heuristic;
        #: bump with :meth:`note_revision` at workload-revision boundaries.
        self.revision = 0
        self._touch_stamps: Dict[int, int] = {}

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.tree.live_length

    def atoms(self) -> List[object]:
        """The visible document as a list of atoms."""
        return self.tree.atoms()

    def text(self, separator: str = "") -> str:
        """The visible document as a string (atoms joined)."""
        return separator.join(str(atom) for atom in self.tree.atoms())

    def posid_at(self, index: int) -> PosID:
        """PosID of the visible atom at ``index``."""
        return slot_posid(self.tree.live_slot_at(index))

    def atom_at(self, index: int) -> object:
        """The visible atom at ``index``."""
        return self.tree.live_slot_at(index).atom

    def posids(self) -> List[PosID]:
        """PosIDs of all visible atoms, in document order."""
        return self.tree.posids()

    @property
    def keeps_tombstones(self) -> bool:
        """True under SDIS, where deleted identifiers stay used."""
        return self.mode == DisambiguatorFactory.SDIS

    # -- local edits ---------------------------------------------------------------

    def insert(self, index: int, atom: object) -> InsertOp:
        """Insert ``atom`` so it becomes the visible atom at ``index``.

        Returns the operation to broadcast to other replicas.
        """
        p_slot, f_slot = self._neighbours(index)
        slot = self.allocator.place_between(p_slot, f_slot,
                                            self._dis_factory.fresh())
        self.tree.set_live(slot, atom)
        posid = slot_posid(slot)
        self._touch(slot)
        return InsertOp(posid, atom, self.site)

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[InsertOp]:
        """Insert a consecutive run of atoms starting at ``index``.

        With balancing enabled the run is grouped into one minimal
        subtree (section 5.1's balancing variant).
        """
        if not atoms:
            return []
        p_slot, f_slot = self._neighbours(index)
        dises = [self._dis_factory.fresh() for _ in atoms]
        slots = self.allocator.place_run(p_slot, f_slot, dises)
        ops: List[InsertOp] = []
        for slot, atom in zip(slots, atoms):
            self.tree.set_live(slot, atom)
            self._touch(slot)
            ops.append(InsertOp(slot_posid(slot), atom, self.site))
        return ops

    def delete(self, index: int) -> DeleteOp:
        """Delete the visible atom at ``index``; returns the operation."""
        slot = self.tree.live_slot_at(index)
        posid = slot_posid(slot)
        self._touch(slot)
        if self.keeps_tombstones:
            self.tree.make_tombstone(slot)
        else:
            self.tree.discard(slot)
        return DeleteOp(posid, self.site)

    def delete_posid(self, posid: PosID) -> DeleteOp:
        """Delete by identifier (initiator must hold the atom)."""
        slot = self.tree.lookup(posid)
        if slot is None or slot.state != "live":
            raise MissingAtomError(f"no live atom at {posid!r}")
        self._touch(slot)
        if self.keeps_tombstones:
            self.tree.make_tombstone(slot)
        else:
            self.tree.discard(slot)
        return DeleteOp(posid, self.site)

    # -- remote replay ----------------------------------------------------------------

    def apply(self, op: Operation) -> None:
        """Replay a (remote) operation. Operations must arrive in an
        order compatible with happened-before; the replication layer's
        causal broadcast guarantees it."""
        if isinstance(op, InsertOp):
            slot = self.tree.apply_insert(op.posid, op.atom)
            self._touch(slot)
        elif isinstance(op, DeleteOp):
            slot = self.tree.apply_delete(
                op.posid, keep_tombstone=self.keeps_tombstones
            )
            if slot is not None:
                self._touch(slot)
        elif isinstance(op, FlattenOp):
            self.apply_flatten(op)
        else:
            raise TreeError(f"unknown operation {op!r}")

    def apply_all(self, ops: Iterable[Operation]) -> None:
        """Replay a sequence of operations."""
        for op in ops:
            self.apply(op)

    # -- flatten (section 4.2) -----------------------------------------------------------

    def make_flatten(self, path: PosID,
                     carry_atoms: bool = False) -> FlattenOp:
        """Build a flatten operation for the subtree at ``path`` from this
        replica's current state (used by the commitment initiator)."""
        node = resolve_region(self.tree, path)
        atoms = tuple(subtree_atoms(node))
        return FlattenOp(
            path,
            content_digest(atoms),
            self.site,
            expected_atoms=atoms if carry_atoms else None,
        )

    def apply_flatten(self, op: FlattenOp) -> List[object]:
        """Apply a committed flatten: rebuild the subtree canonically.

        Verifies the initiator's content digest; a mismatch means the
        commitment protocol admitted a concurrent edit and is a bug.
        """
        node = resolve_region(self.tree, op.path)
        atoms = tuple(subtree_atoms(node))
        if content_digest(atoms) != op.digest:
            raise TreeError(
                "flatten content mismatch: concurrent edit slipped past "
                "the commitment protocol"
            )
        result = flatten_subtree(self.tree, op.path)
        self._touch_region(op.path)
        return result

    def flatten_local(self, path: PosID) -> FlattenOp:
        """Initiate-and-apply a flatten locally (single-replica use, e.g.
        trace replay benchmarks; distributed use goes through
        :mod:`repro.replication.commit`)."""
        op = self.make_flatten(path)
        self.apply_flatten(op)
        return op

    def flatten_cold(self, min_age: int = 1, min_slots: int = 4,
                     min_depth: int = 1) -> Optional[FlattenOp]:
        """Find the largest cold region and flatten it locally.

        Returns the operation, or None when nothing qualifies.
        ``min_depth`` > 1 emulates the paper's weaker partial heuristic
        (see :class:`repro.core.flatten.ColdRegionFinder`).
        """
        finder = ColdRegionFinder(min_age=min_age, min_slots=min_slots,
                                  min_depth=min_depth)
        path = finder.find(self.tree, self._touch_stamps, self.revision)
        if path is None:
            return None
        return self.flatten_local(path)

    def note_revision(self) -> int:
        """Mark a workload-revision boundary for the cold-region clock."""
        self.revision += 1
        return self.revision

    # -- internals ---------------------------------------------------------------------

    def _neighbours(self, index: int):
        """Adjacent used identifiers around visible position ``index``
        (DESIGN.md section 3.2: the successor includes tombstones)."""
        length = self.tree.live_length
        if index < 0 or index > length:
            raise IndexError(f"insert index {index} out of range 0..{length}")
        if index == 0:
            p_slot: Optional[AtomSlot] = None
        else:
            p_slot = self.tree.live_slot_at(index - 1)
        f_slot = self.tree.next_id_holder(p_slot)
        return p_slot, f_slot

    def _touch(self, slot: AtomSlot) -> None:
        """Stamp the position-node spine of ``slot`` with the current
        revision (cold-region bookkeeping)."""
        from repro.core.node import MiniNode, slot_host

        node = slot_host(slot)
        while node is not None:
            self._touch_stamps[id(node)] = self.revision
            parent = node.parent
            if parent is None:
                break
            container, _ = parent
            node = container.host if isinstance(container, MiniNode) else container

    def _touch_region(self, path: PosID) -> None:
        node = resolve_region(self.tree, path)
        self._touch_stamps[id(node)] = self.revision
        self._touch(node)

    # -- diagnostics ------------------------------------------------------------------

    def check(self) -> None:
        """Validate all tree invariants (testing aid)."""
        self.tree.check_invariants()

    def __repr__(self) -> str:
        return (
            f"<Treedoc site={self.site} mode={self.mode} "
            f"atoms={len(self)} ids={self.tree.id_length}>"
        )
