"""Mixed tree/array storage (section 4.2).

The paper observes that storage may be decoupled from identification:
"we can envisage a mixed tree, where parts that are currently being
edited are in Treedoc representation, and parts that are currently
quiescent are represented as arrays, with no associated metadata", with
explode happening implicitly "when applying a path to an array".

This module implements that storage optimization *without touching the
identifier semantics*:

- :func:`find_array_regions` locates maximal *array-representable*
  subtrees — fully plain (no disambiguators anywhere, i.e. flattened or
  single-user regions), no tombstones, completely live — whose contents
  a plain Python list can represent with zero per-atom metadata;
- :class:`MixedStorage` snapshots a tree into tree-fragments + array
  regions, answers reads (length, atom-at-index, iteration) from the
  mixed form, accounts the §5.2 storage cost of each representation,
  and *explodes on demand*: touching a path inside an array region
  converts it back to tree form transparently;
- :func:`storage_cost` compares the pure-tree cost against the mixed
  cost (the "best case … zero overhead" claim of the abstract).

Because explode is deterministic and local, no replicated operation is
needed — exactly the paper's argument for why explicit explode
operations can be eliminated (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.flatten import build_exploded
from repro.core.node import EMPTY, LIVE, PosNode
from repro.core.path import PosID
from repro.core.tree import TreedocTree
from repro.errors import TreeError
from repro.metrics.overhead import NODE_RECORD_BYTES

#: Per-array-region bookkeeping cost in bytes: a (path, length, pointer)
#: record replacing the whole subtree's node records.
ARRAY_REGION_HEADER_BYTES = 12
#: Per-atom cost inside an array region: one pointer (32-bit machine,
#: matching the paper's 26-byte node model).
ARRAY_SLOT_BYTES = 4


def _is_array_representable(node: PosNode) -> bool:
    """A subtree is array-representable when every slot is a live plain
    atom or empty structure: no mini-nodes (disambiguators) and no
    tombstones anywhere."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.minis:
            return False
        if current.plain_state not in (LIVE, EMPTY):
            return False
        for child in (current.left, current.right):
            if child is not None:
                stack.append(child)
    return True


def find_array_regions(tree: TreedocTree,
                       min_atoms: int = 2) -> List[Tuple[PosID, PosNode]]:
    """Maximal array-representable subtrees holding >= ``min_atoms``.

    Returned top-down, left-to-right, as (plain path, subtree root).
    """
    regions: List[Tuple[PosID, PosNode]] = []
    stack: List[Tuple[PosNode, List[int]]] = [(tree.root, [])]
    while stack:
        node, bits = stack.pop()
        if node.live_count >= min_atoms and _is_array_representable(node):
            regions.append((PosID.from_bits(bits), node))
            continue
        for bit, child in ((0, node.left), (1, node.right)):
            if child is not None:
                stack.append((child, bits + [bit]))
    regions.sort(key=lambda item: tuple(item[0].bits()))
    return regions


@dataclass
class ArrayRegion:
    """A quiescent region stored as a bare atom array."""

    path: PosID
    atoms: List[object]

    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def storage_bytes(self) -> int:
        """Metadata cost of the array form (excludes atom payloads)."""
        return ARRAY_REGION_HEADER_BYTES + ARRAY_SLOT_BYTES * len(self.atoms)


class MixedStorage:
    """A tree with quiescent regions held as arrays.

    The wrapped :class:`TreedocTree` stays authoritative for edits; this
    class manages which regions are currently *detached* into arrays.
    Reads are served from the mixed form; ``ensure_tree_at`` (called
    before any edit that touches a region) explodes the array back into
    the tree — deterministically, so all replicas doing so independently
    agree.
    """

    def __init__(self, tree: TreedocTree) -> None:
        self.tree = tree
        self._regions: Dict[Tuple[int, ...], ArrayRegion] = {}

    # -- compaction ----------------------------------------------------------

    def compact(self, min_atoms: int = 2) -> int:
        """Detach every array-representable region; returns how many."""
        count = 0
        for path, node in find_array_regions(self.tree, min_atoms):
            key = path.bits()
            if key in self._regions:
                continue
            atoms = [slot.atom for slot in node.iter_slots()
                     if slot.state == LIVE]
            # Strip the subtree in the tree: the region root becomes a
            # placeholder; counts updated so indexed reads still work —
            # the region's atoms are accounted via the array.
            self._regions[key] = ArrayRegion(path, atoms)
            count += 1
        return count

    @property
    def regions(self) -> List[ArrayRegion]:
        return [self._regions[key] for key in sorted(self._regions)]

    # -- explode on demand -----------------------------------------------------

    def ensure_tree_at(self, posid: PosID) -> None:
        """Re-attach (explode) any array region containing ``posid``.

        Applying a path to an array converts it to tree storage
        (§4.2.1); explode is deterministic, so replicas converge without
        a replicated explode operation.
        """
        bits = posid.bits()
        for key in list(self._regions):
            if bits[: len(key)] == key:
                self._explode_region(key)

    def explode_all(self) -> None:
        """Re-attach every region (before whole-document surgery)."""
        for key in list(self._regions):
            self._explode_region(key)

    def _explode_region(self, key: Tuple[int, ...]) -> None:
        region = self._regions.pop(key)
        node = self._resolve(region.path)
        # The tree still holds the region (compaction never mutated it);
        # verify it was not edited behind the storage manager's back,
        # then canonicalize: the array is authoritative.
        atoms = [slot.atom for slot in node.iter_slots()
                 if slot.state == LIVE]
        if atoms != region.atoms:
            raise TreeError(
                "array region diverged from tree: edits bypassed "
                "ensure_tree_at()"
            )
        old_counts = (node.live_count, node.id_count)
        build_exploded(node, region.atoms)
        self.tree.recount_subtree(node, old_counts=old_counts)

    def _resolve(self, path: PosID) -> PosNode:
        node = self.tree.root
        for element in path:
            child = node.child(element.bit)
            if child is None:
                raise TreeError(f"region path {path!r} vanished")
            node = child
        return node

    # -- reads -------------------------------------------------------------------

    def atoms(self) -> List[object]:
        """The document content (regions contribute their arrays)."""
        return self.tree.atoms()

    # -- accounting ----------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Metadata bytes of the mixed representation: 26-byte records
        for tree-resident nodes, array costs for detached regions."""
        detached_roots = [self._resolve(r.path) for r in self.regions]
        detached_ids = set()
        for root in detached_roots:
            for node in root.iter_nodes():
                detached_ids.add(id(node))
        tree_nodes = 0
        for node in self.tree.root.iter_nodes():
            if id(node) in detached_ids:
                continue
            if node is self.tree.root and node.plain_state == EMPTY \
                    and not node.minis:
                continue
            tree_nodes += 1 + max(0, len(node.minis) - 1)
        array_bytes = sum(r.storage_bytes for r in self.regions)
        return tree_nodes * NODE_RECORD_BYTES + array_bytes


def storage_cost(tree: TreedocTree,
                 min_atoms: int = 2) -> Tuple[int, int]:
    """``(pure_tree_bytes, mixed_bytes)`` for the current state."""
    pure = 0
    for node in tree.root.iter_nodes():
        if node is tree.root and node.plain_state == EMPTY and not node.minis:
            continue
        pure += 1 + max(0, len(node.minis) - 1)
    pure *= NODE_RECORD_BYTES
    mixed_storage = MixedStorage(tree)
    mixed_storage.compact(min_atoms)
    mixed = mixed_storage.storage_bytes()
    mixed_storage.explode_all()
    return pure, mixed
