"""Mixed tree/array storage (section 4.2).

The paper observes that storage may be decoupled from identification:
"we can envisage a mixed tree, where parts that are currently being
edited are in Treedoc representation, and parts that are currently
quiescent are represented as arrays, with no associated metadata", with
explode happening implicitly "when applying a path to an array".

Two implementations live in this codebase:

- the **live** one — :class:`repro.core.node.ArrayLeaf` children inside
  :class:`repro.core.tree.TreedocTree`, collapsed by
  :func:`find_collapsible` + ``TreedocTree.collapse_subtree`` (driven by
  ``Treedoc.collapse_cold``) and exploded implicitly when any path or
  index lands inside a region. This is the production storage form; see
  DESIGN.md section 7.
- the **offline snapshot model** below (:func:`find_array_regions`,
  :class:`MixedStorage`, :func:`storage_cost`), which predates the live
  form and remains as the section 5.2 storage-cost accountant: it
  computes what the mixed representation costs on a given tree without
  committing the tree to it.

Because explode is deterministic and local, no replicated operation is
needed — exactly the paper's argument for why explicit explode
operations can be eliminated (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.flatten import ColdRegionFinder, build_exploded
from repro.core.node import (
    EMPTY,
    LIVE,
    ArrayLeaf,
    PosNode,
    collect_leaf_slots,
)
from repro.core.path import PosID
from repro.core.tree import TreedocTree
from repro.errors import TreeError
from repro.metrics.overhead import (  # noqa: F401  (re-exported: historical home)
    ARRAY_REGION_HEADER_BYTES,
    ARRAY_SLOT_BYTES,
    NODE_RECORD_BYTES,
)


def find_collapsible(
    tree: TreedocTree,
    stamps: dict,
    current_revision: int,
    min_age: int = 2,
    min_atoms: int = 8,
    allow_tombstones: bool = False,
    withhold=None,
) -> List[Tuple[PosID, PosNode, List[object], int]]:
    """Cold canonical subtrees ready to collapse into array leaves.

    Returns ``(plain path, subtree root, atoms, dead bitmap)``
    4-tuples, top-down and left-to-right. A subtree qualifies when it
    has been untouched for ``min_age`` revisions (by the
    :class:`ColdRegionFinder` stamps), is in canonical exploded form
    (:func:`collect_leaf_slots` — fully plain, the shape flatten
    builds), and holds at least ``min_atoms`` identifiers. With
    ``allow_tombstones`` (SDIS mode), stable-tombstone slots are
    harvested into the leaf's dead bitmap instead of blocking the
    collapse; the bitmap is 0 for fully live regions. The root itself
    never collapses (mirroring the flatten heuristic); a
    cold-but-hot-shaped subtree is descended, so smaller canonical
    pockets inside it are still found. Already collapsed children are
    skipped.

    ``withhold`` is the re-collapse hysteresis hook: an optional
    ``(bits, node, age) -> bool`` callable consulted on regions that
    qualify structurally; returning True withholds the region whole —
    its inner pockets are the same region, so the scan does not descend
    into it either.
    """
    newest = ColdRegionFinder._newest_stamps(tree.root, stamps)
    regions: List[Tuple[PosID, PosNode, List[object], int]] = []
    stack: List[Tuple[PosNode, Tuple[int, ...]]] = [(tree.root, ())]
    while stack:
        node, bits = stack.pop()
        age = current_revision - newest[id(node)]
        if bits and age >= min_age:
            harvest = collect_leaf_slots(node, min_atoms, allow_tombstones)
            if harvest is not None:
                if withhold is not None and withhold(bits, node, age):
                    continue
                atoms, dead = harvest
                regions.append((PosID.from_bits(bits), node, atoms, dead))
                continue
        for bit, child in ((0, node.left), (1, node.right)):
            if child is not None and not isinstance(child, ArrayLeaf):
                stack.append((child, bits + (bit,)))
    regions.sort(key=lambda item: item[0].bits())
    return regions


def _is_array_representable(node: PosNode) -> bool:
    """A subtree is array-representable when every slot is a live plain
    atom or empty structure: no mini-nodes (disambiguators) and no
    tombstones anywhere. An already collapsed child trivially is."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current.minis:
            return False
        if current.plain_state not in (LIVE, EMPTY):
            return False
        for child in (current.left, current.right):
            if child is not None and not isinstance(child, ArrayLeaf):
                stack.append(child)
    return True


def find_array_regions(tree: TreedocTree,
                       min_atoms: int = 2) -> List[Tuple[PosID, PosNode]]:
    """Maximal array-representable subtrees holding >= ``min_atoms``.

    Returned top-down, left-to-right, as (plain path, subtree root).
    """
    regions: List[Tuple[PosID, PosNode]] = []
    stack: List[Tuple[PosNode, List[int]]] = [(tree.root, [])]
    while stack:
        node, bits = stack.pop()
        if node.live_count >= min_atoms and _is_array_representable(node):
            regions.append((PosID.from_bits(bits), node))
            continue
        for bit, child in ((0, node.left), (1, node.right)):
            if child is not None:
                stack.append((child, bits + [bit]))
    regions.sort(key=lambda item: tuple(item[0].bits()))
    return regions


@dataclass
class ArrayRegion:
    """A quiescent region stored as a bare atom array."""

    path: PosID
    atoms: List[object]

    def __len__(self) -> int:
        return len(self.atoms)

    @property
    def storage_bytes(self) -> int:
        """Metadata cost of the array form (excludes atom payloads)."""
        return ARRAY_REGION_HEADER_BYTES + ARRAY_SLOT_BYTES * len(self.atoms)


class MixedStorage:
    """A tree with quiescent regions held as arrays.

    The wrapped :class:`TreedocTree` stays authoritative for edits; this
    class manages which regions are currently *detached* into arrays.
    Reads are served from the mixed form; ``ensure_tree_at`` (called
    before any edit that touches a region) explodes the array back into
    the tree — deterministically, so all replicas doing so independently
    agree.
    """

    def __init__(self, tree: TreedocTree) -> None:
        self.tree = tree
        self._regions: Dict[Tuple[int, ...], ArrayRegion] = {}

    # -- compaction ----------------------------------------------------------

    def compact(self, min_atoms: int = 2) -> int:
        """Detach every array-representable region; returns how many."""
        count = 0
        from repro.core.flatten import subtree_atoms

        for path, node in find_array_regions(self.tree, min_atoms):
            key = path.bits()
            if key in self._regions:
                continue
            atoms = subtree_atoms(node)
            # Strip the subtree in the tree: the region root becomes a
            # placeholder; counts updated so indexed reads still work —
            # the region's atoms are accounted via the array.
            self._regions[key] = ArrayRegion(path, atoms)
            count += 1
        return count

    @property
    def regions(self) -> List[ArrayRegion]:
        return [self._regions[key] for key in sorted(self._regions)]

    # -- explode on demand -----------------------------------------------------

    def ensure_tree_at(self, posid: PosID) -> None:
        """Re-attach (explode) any array region containing ``posid``.

        Applying a path to an array converts it to tree storage
        (§4.2.1); explode is deterministic, so replicas converge without
        a replicated explode operation.
        """
        bits = posid.bits()
        for key in list(self._regions):
            if bits[: len(key)] == key:
                self._explode_region(key)

    def explode_all(self) -> None:
        """Re-attach every region (before whole-document surgery)."""
        for key in list(self._regions):
            self._explode_region(key)

    def _explode_region(self, key: Tuple[int, ...]) -> None:
        from repro.core.flatten import subtree_atoms

        region = self._regions.pop(key)
        node = self._resolve(region.path)
        # The tree still holds the region (compaction never mutated it);
        # verify it was not edited behind the storage manager's back,
        # then canonicalize: the array is authoritative.
        atoms = subtree_atoms(node)
        if atoms != region.atoms:
            raise TreeError(
                "array region diverged from tree: edits bypassed "
                "ensure_tree_at()"
            )
        old_counts = (node.live_count, node.id_count)
        build_exploded(node, region.atoms)
        self.tree.recount_subtree(node, old_counts=old_counts)

    def _resolve(self, path: PosID) -> PosNode:
        node = self.tree.root
        for element in path:
            child = node.child(element.bit)
            if child is None:
                raise TreeError(f"region path {path!r} vanished")
            node = child
        return node

    # -- reads -------------------------------------------------------------------

    def atoms(self) -> List[object]:
        """The document content (regions contribute their arrays)."""
        return self.tree.atoms()

    # -- accounting ----------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Metadata bytes of the mixed representation: 26-byte records
        for tree-resident nodes, array costs for detached regions."""
        detached_roots = [self._resolve(r.path) for r in self.regions]
        detached_ids = set()
        for root in detached_roots:
            for node in root.iter_nodes():
                detached_ids.add(id(node))
        tree_nodes = 0
        for node in self.tree.root.iter_nodes():
            if id(node) in detached_ids:
                continue
            if node is self.tree.root and node.plain_state == EMPTY \
                    and not node.minis:
                continue
            tree_nodes += 1 + max(0, len(node.minis) - 1)
        array_bytes = sum(r.storage_bytes for r in self.regions)
        return tree_nodes * NODE_RECORD_BYTES + array_bytes


def storage_cost(tree: TreedocTree,
                 min_atoms: int = 2) -> Tuple[int, int]:
    """``(pure_tree_bytes, mixed_bytes)`` for the current state."""
    pure = 0
    for node in tree.root.iter_nodes():
        if node is tree.root and node.plain_state == EMPTY and not node.minis:
            continue
        pure += 1 + max(0, len(node.minis) - 1)
    pure *= NODE_RECORD_BYTES
    mixed_storage = MixedStorage(tree)
    mixed_storage.compact(min_atoms)
    mixed = mixed_storage.storage_bytes()
    mixed_storage.explode_all()
    return pure, mixed
