"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class. Finer-grained classes signal where in the stack
the problem occurred (identifier algebra, tree storage, replication, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PathError(ReproError):
    """An invalid PosID path was supplied or constructed."""


class AllocationError(ReproError):
    """``newPosID`` could not allocate an identifier between two bounds."""


class TreeError(ReproError):
    """The Treedoc tree was asked to do something inconsistent."""


class DuplicateAtomError(TreeError):
    """An atom already exists at the target PosID."""


class MissingAtomError(TreeError):
    """No (live) atom exists at the target PosID."""


class EncodingError(ReproError):
    """Wire or disk encoding/decoding failed."""


class DecodeError(EncodingError):
    """A wire payload could not be decoded: truncated input, trailing
    garbage, or a corrupt/invalid record. Raised by the public decode
    entry points of :mod:`repro.core.encoding` and
    :mod:`repro.replication.wire`; low-level stream primitives keep
    raising :class:`EncodingError`. The simulated network treats a
    handler raising this as a lost transmission and retransmits.

    Carries attribution context so daemon logs and retransmit counters
    can say *what* failed, not just that something did:

    - ``frame_kind`` — the wire frame kind name (``"envelope"``,
      ``"sync_request"``, ...) when the header survived enough to read
      it, else None;
    - ``offset`` — byte offset into the payload where decoding stopped
      (None when unknown, e.g. a whole-frame CRC mismatch);
    - ``length`` — the damaged payload's byte length, when known.
    """

    def __init__(self, message: str = "", *, frame_kind: str | None = None,
                 offset: int | None = None,
                 length: int | None = None) -> None:
        super().__init__(message)
        self.frame_kind = frame_kind
        self.offset = offset
        self.length = length

    def context(self) -> str:
        """The attribution fields as a log-ready suffix."""
        parts = []
        if self.frame_kind is not None:
            parts.append(f"kind={self.frame_kind}")
        if self.offset is not None:
            parts.append(f"offset={self.offset}")
        if self.length is not None:
            parts.append(f"length={self.length}")
        return " ".join(parts)


class CorruptFrameError(DecodeError):
    """A wire frame failed its integrity check (CRC mismatch): the
    bytes were damaged in transit. A strict subset of
    :class:`DecodeError` so transports need only one except clause."""


class FrameSyncError(DecodeError):
    """A byte *stream* lost frame alignment: the transport framing
    header (:mod:`repro.server.framing`) did not start where expected.
    The reader has already discarded bytes up to the next plausible
    frame boundary — ``offset`` says how many — so the caller may
    simply continue reading, or drop the connection if it prefers."""


class SyncError(ReproError):
    """A state-transfer (anti-entropy) exchange was invalid: mode
    mismatch, diverged replicas, or a corrupt snapshot."""


class PendingEditsError(SyncError):
    """A state sync was refused because local edits are still pending
    in an outbox (they would be silently lost by adopting a snapshot).
    Recovery and anti-entropy code distinguish this from a stale
    snapshot: the cure is to ship the pending batches, not to pick a
    fresher peer."""


class StaleStateError(SyncError):
    """A state sync was refused because the offered snapshot's causal
    frontier does not dominate the receiver's — the receiver has
    applied events the snapshot lacks. The cure is replay, or a peer
    that is strictly ahead; shipping an outbox would not help."""


class StorageError(ReproError):
    """The durable store was misused (wrong site or mode for a
    recovered image, unknown record kind, appends to a closed log).
    Torn or corrupted log *content* is never a StorageError — it
    surfaces internally as :class:`DecodeError` and recovery truncates
    to the last intact record."""


class ReplicationError(ReproError):
    """Causal delivery or site bookkeeping was violated."""


class DaemonError(ReproError):
    """The asyncio site daemon (:mod:`repro.server`) was misused or hit
    an unrecoverable serving condition (bad configuration, duplicate
    local site, admin-protocol violation)."""


class OverloadedError(DaemonError):
    """The daemon's admission gate refused work because a queue or
    in-flight cap was reached — the typed, *expected* refusal under
    overload. Callers back off and retry; remote peers receive the
    wire-level equivalent (``SyncDecline(busy)``) or have their
    re-requestable frames shed."""


class CausalityError(ReplicationError):
    """An operation was delivered before its causal dependencies."""


class CommitError(ReproError):
    """A distributed commitment (flatten) protocol error."""


class WorkloadError(ReproError):
    """A trace or corpus could not be generated or replayed."""
