"""Bit-level packing helpers used by the wire and disk encodings.

Treedoc's evaluation reports PosID sizes in *bits* (Table 1), so the
encoders in :mod:`repro.core.encoding` and :mod:`repro.core.disk` write
genuinely bit-packed streams rather than byte-aligned approximations.
"""

from __future__ import annotations

from repro.errors import EncodingError


def bits_for_int(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise EncodingError(f"cannot size negative value {value}")
    return max(1, value.bit_length())


class BitWriter:
    """Append-only bit stream writer.

    Bits are accumulated most-significant-first within each byte, matching
    the top-to-bottom, left-to-right layout of the on-disk heap array
    described in section 5.2 of the paper.
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_count = 0

    def __len__(self) -> int:
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise EncodingError(f"bit must be 0 or 1, got {bit!r}")
        byte_index, offset = divmod(self._bit_count, 8)
        if byte_index == len(self._bytes):
            self._bytes.append(0)
        if bit:
            self._bytes[byte_index] |= 0x80 >> offset
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise EncodingError(f"width must be non-negative, got {width}")
        if value < 0 or (width < value.bit_length()):
            raise EncodingError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` as unary: ``value`` ones followed by a zero."""
        if value < 0:
            raise EncodingError(f"unary value must be non-negative: {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_elias_gamma(self, value: int) -> None:
        """Append ``value`` (>= 1) using Elias gamma coding."""
        if value < 1:
            raise EncodingError(f"elias-gamma needs value >= 1, got {value}")
        width = value.bit_length()
        self.write_unary(width - 1)
        self.write_bits(value - (1 << (width - 1)), width - 1)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (8 bits each)."""
        for byte in data:
            self.write_bits(byte, 8)

    def getvalue(self) -> bytes:
        """Return the accumulated bytes (final byte zero-padded)."""
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_count


class BitReader:
    """Sequential reader over a bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = data
        self._bit_count = len(data) * 8 if bit_length is None else bit_length
        if self._bit_count > len(data) * 8:
            raise EncodingError("bit_length exceeds the supplied data")
        self._position = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._bit_count - self._position

    @property
    def bit_position(self) -> int:
        """Bits consumed so far (error attribution reads this to say
        *where* in a payload decoding stopped)."""
        return self._position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._position >= self._bit_count:
            raise EncodingError("bit stream exhausted")
        byte_index, offset = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - offset)) & 1

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise EncodingError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of ones before the first zero)."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_elias_gamma(self) -> int:
        """Read an Elias-gamma-coded value (>= 1)."""
        width = self.read_unary() + 1
        rest = self.read_bits(width - 1)
        return (1 << (width - 1)) + rest

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes."""
        return bytes(self.read_bits(8) for _ in range(count))
