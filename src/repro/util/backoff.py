"""Exponential backoff with deterministic jitter — one implementation.

Two layers of the stack retry against possibly-unhealthy peers: the
anti-entropy policy (:class:`repro.replication.sync.AntiEntropyPolicy`)
backs off a responder that declined or served a stale snapshot, and the
site daemon's connection supervisor (:mod:`repro.server`) re-dials a
peer whose socket died. Both need the same two ingredients:

- an **exponential delay schedule** — first retry after ``base``,
  growing by ``factor`` per consecutive failure, capped at ``maximum``
  (so one flaky exchange is retried quickly but a dead peer costs a
  bounded, slowly-polled amount of attention); and
- **deterministic jitter** — each delay stretches by up to a fraction
  of itself, drawn from a *seeded* stream (:func:`repro.util.rng.
  derive_rng`, no wall clock anywhere), so a hundred clients that
  observed the same failure at the same instant do not synchronize
  into a retry storm, yet every run replays identically from its seed.

Times are unit-agnostic floats: the simulation feeds simulated
milliseconds, the daemon feeds real milliseconds — the schedule is the
same either way, which is what makes the simulator's backoff behaviour
predictive of the real transport's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """An exponential retry schedule: ``base * factor**(n-1)``, capped.

    ``delay(0)`` is 0.0 (no failures: retry immediately); ``delay(n)``
    for ``n >= 1`` grows geometrically and saturates at ``maximum``.
    """

    #: Delay before the first retry.
    base: float = 200.0
    #: Growth per consecutive failure.
    factor: float = 2.0
    #: Saturation cap on the delay.
    maximum: float = 3200.0

    def delay(self, failures: int) -> float:
        """Delay after ``failures`` consecutive failures."""
        if failures <= 0:
            return 0.0
        return min(self.maximum, self.base * self.factor ** (failures - 1))

    def delays(self, count: int) -> list:
        """The first ``count`` delays of the schedule (for logs/tests)."""
        return [self.delay(n) for n in range(1, count + 1)]


def jittered(interval: float, fraction: float,
             rng: random.Random) -> float:
    """Stretch ``interval`` by up to ``fraction`` of itself, drawn from
    ``rng`` — the shared jitter rule (stretch-only, never shrink, so a
    jittered backoff still respects its schedule as a floor). A
    non-positive ``fraction`` or ``interval`` passes through unchanged
    without consuming a draw, keeping seeded streams aligned between
    configurations that disable jitter and ones that cannot use it.
    """
    if fraction <= 0.0 or interval <= 0.0:
        return interval
    return interval * (1.0 + fraction * rng.random())
