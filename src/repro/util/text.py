"""Atom-sequence rendering shared by every text() surface."""

from __future__ import annotations

from typing import Iterable


def join_atoms(separator: str, atoms: Iterable[object]) -> str:
    """Join atoms into a string, skipping per-atom ``str()`` calls when
    every atom already is one (character, line and paragraph documents
    — all shipped workloads). The one place the fast-path/fallback
    pattern lives."""
    if not isinstance(atoms, (list, tuple)):
        # One-shot iterators would be exhausted by a failed join before
        # the fallback could re-read them.
        atoms = list(atoms)
    try:
        return separator.join(atoms)
    except TypeError:
        return separator.join(str(atom) for atom in atoms)
