"""Crash-safe file primitives shared by the storage layer and disk images.

The durability rules are the classic ones: a file that must never be
observed half-written is produced as a temporary sibling, flushed and
fsynced, then atomically renamed over the target (`os.replace` is atomic
on POSIX within one filesystem); the directory entry itself is fsynced
so the rename survives a power cut. Readers therefore see either the
old complete file or the new complete file, never a torn one.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional


def fsync_dir(path: Path) -> None:
    """fsync a directory so a rename/create inside it is durable.

    Best effort: some platforms (and some CI filesystems) refuse to
    open directories; losing the directory fsync weakens the crash
    story without affecting correctness of what readers can observe.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Path,
    data: bytes,
    fsync: bool = True,
    before_replace: Optional[Callable[[], None]] = None,
) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    ``before_replace`` is a crash-injection hook: it runs after the
    temporary file is durable but before the rename, which is exactly
    the window where a crash must leave the *old* file intact. The
    temporary file is removed on any failure.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        if before_replace is not None:
            before_replace()
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(path.parent)
