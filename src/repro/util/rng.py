"""Deterministic random-number plumbing.

Every stochastic component in the library (synthetic corpora, the network
simulator, workload generators) takes an explicit seed and derives child
generators through :func:`derive_rng`, so a whole experiment is reproducible
from a single integer.
"""

from __future__ import annotations

import hashlib
import random


def spawn_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation hashes the parent seed together with the labels so that
    sibling components (e.g. per-document corpora) receive independent
    streams, and the mapping is stable across runs and platforms.
    """
    payload = repr((seed, labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` seeded from ``seed`` and ``labels``."""
    return random.Random(spawn_seed(seed, *labels))
