"""Small shared utilities: deterministic RNG handling, bit packing and
atom-sequence rendering."""

from repro.util.rng import derive_rng, spawn_seed
from repro.util.backoff import BackoffPolicy, jittered
from repro.util.bits import BitWriter, BitReader, bits_for_int
from repro.util.text import join_atoms

__all__ = [
    "derive_rng",
    "spawn_seed",
    "BackoffPolicy",
    "jittered",
    "BitWriter",
    "BitReader",
    "bits_for_int",
    "join_atoms",
]
