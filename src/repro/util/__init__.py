"""Small shared utilities: deterministic RNG handling and bit packing."""

from repro.util.rng import derive_rng, spawn_seed
from repro.util.bits import BitWriter, BitReader, bits_for_int

__all__ = [
    "derive_rng",
    "spawn_seed",
    "BitWriter",
    "BitReader",
    "bits_for_int",
]
