"""Deterministic crash injection for the durable-storage tests.

Two fault families make recover-then-converge testable without real
power cuts:

- **Crash points** — named hooks the store evaluates at every step of
  its write protocol (``wal.append.before``, ``checkpoint.rename``,
  ...). Arming a point makes the k-th visit raise :class:`CrashError`,
  which the harness treats as the process dying *at that instruction*:
  the store object is abandoned and a fresh one recovers from the
  files left behind. The ``wal.append.torn`` point additionally writes
  only a prefix of the record before dying — a torn write.
- **Kill at a byte offset** — :func:`tear_file` / :func:`tear_store`
  truncate the newest log segment at an arbitrary byte, modelling a
  crash that cut the tail of a buffered write anywhere at all. The
  recovery contract (exercised exhaustively in the tests) is that
  *every* byte prefix of a valid log either recovers cleanly or
  truncates to the last intact record — never a foreign exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional


class CrashError(RuntimeError):
    """An armed crash point fired: the simulated process died here.

    Deliberately *not* a :class:`repro.errors.ReproError`: library code
    must never catch it — the whole point is that the write protocol is
    abandoned mid-instruction, exactly like a kill -9.
    """


@dataclass
class _Armed:
    #: Fire on the ``at``-th visit (1-based).
    at: int
    #: For torn-write points: bytes of the record to write before dying.
    keep_bytes: Optional[int] = None
    hits: int = 0


class CrashInjector:
    """A registry of armed crash points, shared with a DurableStore."""

    def __init__(self) -> None:
        self._armed: Dict[str, _Armed] = {}
        #: Points that fired, in order (assertion aid).
        self.fired: List[str] = []

    def arm(self, point: str, at: int = 1,
            keep_bytes: Optional[int] = None) -> None:
        """Arm ``point`` to crash on its ``at``-th visit. For
        ``wal.append.torn``, ``keep_bytes`` bounds how much of the
        record reaches the file before the crash."""
        self._armed[point] = _Armed(at=at, keep_bytes=keep_bytes)

    def disarm(self, point: str) -> None:
        self._armed.pop(point, None)

    def check(self, point: str) -> None:
        """Visit ``point``; raises :class:`CrashError` when armed and due."""
        armed = self._armed.get(point)
        if armed is None:
            return
        armed.hits += 1
        if armed.hits == armed.at:
            self.fired.append(point)
            raise CrashError(f"injected crash at {point}")

    def torn_write(self, point: str, total: int) -> Optional[int]:
        """Like :meth:`check` for torn-write points: when due, returns
        how many of ``total`` bytes to write before the crash (the
        caller writes that prefix, then calls :meth:`check` variantly —
        here we return and the caller raises). Returns None when the
        point is not due."""
        armed = self._armed.get(point)
        if armed is None:
            return None
        armed.hits += 1
        if armed.hits != armed.at:
            return None
        self.fired.append(point)
        keep = armed.keep_bytes
        if keep is None:
            keep = total // 2
        return max(0, min(keep, total))


def tear_file(path: Path, offset: int) -> int:
    """Truncate ``path`` to ``offset`` bytes (a crash that cut the
    tail). Returns the number of bytes discarded."""
    path = Path(path)
    size = path.stat().st_size
    offset = max(0, min(offset, size))
    with open(path, "rb+") as handle:
        handle.truncate(offset)
    return size - offset


def tear_store(root: Path, offset: Optional[int] = None,
               rng=None) -> tuple:
    """Kill-at-random-byte-offset: truncate the newest WAL segment
    under ``root`` at ``offset`` (or an ``rng``-chosen offset).
    Returns ``(segment_path, offset, discarded_bytes)``."""
    root = Path(root)
    segments = sorted(root.glob("wal-*.log"))
    if not segments:
        raise FileNotFoundError(f"no WAL segments under {root}")
    segment = segments[-1]
    size = segment.stat().st_size
    if offset is None:
        if rng is None:
            raise ValueError("pass offset or rng")
        offset = rng.randrange(size + 1) if size else 0
    discarded = tear_file(segment, offset)
    return segment, offset, discarded
