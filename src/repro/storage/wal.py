"""The write-ahead log: an append-only file of framed byte records.

A WAL segment is a sequence of records, each a small fixed header plus
an opaque payload::

    record := kind(u8) | length(u32 BE) | crc32(payload)(u32 BE) | payload

The payloads are the stack's *existing* encoded frames — peer-protocol
envelopes (:func:`repro.replication.wire.encode_wire`, CRC-closed
themselves) for replica sites, core v2 batch frames
(:func:`repro.core.encoding.encode_batch`) for the facade — so the WAL
introduces no second codec: the record header only adds framing and a
payload CRC-32, the same integrity discipline the wire uses.

Reading back is a scan (:func:`scan_records`): a record whose header is
incomplete, whose payload is shorter than declared, or whose CRC does
not match is a *torn or corrupted tail* — the scan stops there and
reports the byte offset of the damage, and recovery truncates the file
to the last intact record. Damage therefore surfaces as the typed
:class:`repro.errors.DecodeError` family internally and never as a
foreign exception.

Record kinds (what the owner does with a payload on replay):

==============  =============================================================
``META``        JSON bookkeeping written at segment creation (site, mode,
                ``op_seq``, revision) — restores counters a checkpoint
                state frame cannot carry.
``ENVELOPE``    one peer-protocol :class:`EnvelopeFrame` as wire bytes —
                a replica site's unit of durable history (local mints and
                remote deliveries alike).
``LOCAL``       a facade replica's locally minted batch (core batch frame).
``REMOTE``      a facade replica's merged remote batch or operation.
``OUTBOX``      a locally minted batch re-logged at checkpoint time because
                it was still undrained: restored to the outbox on recovery
                but *not* re-applied (the checkpoint state contains it).
``DRAIN``       the outbox was drained (shipped); empty payload.
==============  =============================================================
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.errors import DecodeError, StorageError

#: Record kinds (the ``kind`` header byte).
RECORD_META = 0
RECORD_ENVELOPE = 1
RECORD_LOCAL = 2
RECORD_REMOTE = 3
RECORD_OUTBOX = 4
RECORD_DRAIN = 5

_KINDS = (RECORD_META, RECORD_ENVELOPE, RECORD_LOCAL, RECORD_REMOTE,
          RECORD_OUTBOX, RECORD_DRAIN)

_HEADER = struct.Struct(">BII")

#: Bytes every record spends beside its payload (kind + length + CRC).
RECORD_HEADER_BYTES = _HEADER.size


def pack_record(kind: int, payload: bytes) -> bytes:
    """Frame one record for appending."""
    if kind not in _KINDS:
        raise StorageError(f"unknown WAL record kind {kind}")
    return _HEADER.pack(kind, len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalRecord:
    """One intact record read back from a segment."""

    kind: int
    payload: bytes
    #: Byte offset of the record's header in its segment file.
    offset: int
    #: Byte offset just past the record (where the next one starts).
    end: int


def scan_records(data: bytes) -> Tuple[List[WalRecord], int]:
    """Parse a segment's bytes into intact records.

    Returns ``(records, good_end)`` where ``good_end`` is the offset of
    the first byte that is not part of an intact record — the recovery
    truncation point. A torn header, a payload cut short, an unknown
    kind byte or a CRC mismatch all end the scan there; they are the
    expected shapes of a crash mid-append (or a flipped bit in the
    tail) and are handled by truncation, not raised.
    """
    records: List[WalRecord] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + RECORD_HEADER_BYTES > size:
            break  # torn header
        kind, length, crc = _HEADER.unpack_from(data, offset)
        start = offset + RECORD_HEADER_BYTES
        end = start + length
        if kind not in _KINDS or end > size:
            break  # unknown kind (corrupt header) or torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # bit-flipped payload (or a header length corruption)
        records.append(WalRecord(kind, payload, offset, end))
        offset = end
    return records, offset


def read_segment(path: Path) -> Tuple[List[WalRecord], int, int]:
    """Scan one segment file: ``(records, good_end, file_size)``."""
    data = Path(path).read_bytes()
    records, good_end = scan_records(data)
    return records, good_end, len(data)


def iter_payloads(records: List[WalRecord],
                  kind: int) -> Iterator[bytes]:
    """The payloads of all records of one kind, in log order."""
    return (record.payload for record in records if record.kind == kind)


def check_payload(payload: bytes, declared_crc: int) -> None:
    """Explicit integrity check for callers holding a raw payload
    (mirrors the scan's CRC test; raises the typed error)."""
    if zlib.crc32(payload) != declared_crc:
        raise DecodeError("WAL record CRC mismatch")
