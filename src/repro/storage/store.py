"""Durable sites: the write-ahead log + checkpoint store behind a replica.

One :class:`DurableStore` owns one directory::

    root/
      MANIFEST.json            # atomic pointer + counters (a hint, not
                               # a dependency: recovery works without it)
      checkpoint-00000002.bin  # one encoded SyncResponse wire frame
      wal-00000002.log         # records appended since that checkpoint

The generation discipline ties the two halves together:

- WAL segment ``n`` holds every record logged *after* checkpoint ``n``
  was taken (segment 0 pairs with the empty document);
- a checkpoint is one :class:`repro.replication.wire.SyncResponse`
  frame — the exact anti-entropy message: document state via
  ``Treedoc.capture_state`` (quiescent regions as runs), the causal
  frontier, and the outstanding delete log — written with the atomic
  temp + fsync + rename protocol, so a crash mid-checkpoint leaves the
  previous checkpoint untouched;
- taking checkpoint ``n+1`` while segment ``n`` is current means:
  write ``checkpoint-(n+1)`` atomically, open ``wal-(n+1)`` (starting
  with a ``META`` record), update the manifest, prune generations
  older than the retention window.

Recovery (:meth:`DurableStore.recover`) is the inverse state machine:

1. pick the newest checkpoint file whose trailing CRC-32 verifies
   (the frame closes with one — the wire discipline doubles as the
   at-rest integrity check); fall back generation by generation;
2. scan WAL segments with id >= that checkpoint's, in order; the first
   torn or corrupted record ends the scan — the file is truncated to
   the last intact record and any later segment is dropped;
3. hand the owner the checkpoint bytes plus the surviving records; the
   owner decodes and replays them (clock-filtered, so records already
   covered by the checkpoint — possible when a crash hit between the
   checkpoint rename and the log rotation — drop as duplicates).

Crash points (:mod:`repro.storage.crash`) are evaluated at every step
of both protocols, which is how the tests pin each crash window to its
recovery outcome.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.crash import CrashError, CrashInjector
from repro.storage.wal import (
    RECORD_ENVELOPE,
    RECORD_LOCAL,
    RECORD_META,
    RECORD_REMOTE,
    WalRecord,
    pack_record,
    read_segment,
)
from repro.util.files import atomic_write_bytes, fsync_dir

_SEGMENT_GLOB = "wal-*.log"
_CHECKPOINT_GLOB = "checkpoint-*.bin"
_MANIFEST = "MANIFEST.json"

#: Record kinds that advance the checkpoint cadence (bookkeeping
#: records — META, OUTBOX re-logs, DRAIN markers — do not).
_COUNTED = (RECORD_ENVELOPE, RECORD_LOCAL, RECORD_REMOTE)


def _segment_path(root: Path, seg_id: int) -> Path:
    return root / f"wal-{seg_id:08d}.log"


def _checkpoint_path(root: Path, cp_id: int) -> Path:
    return root / f"checkpoint-{cp_id:08d}.bin"


def _file_id(path: Path) -> int:
    return int(path.stem.split("-", 1)[1])


def _crc_valid(data: bytes) -> bool:
    """The at-rest integrity test for a checkpoint file: every stored
    frame is a wire frame, i.e. body + trailing CRC-32."""
    import zlib

    from repro.replication.wire import CRC_BYTES

    if len(data) <= CRC_BYTES:
        return False
    body, crc = data[:-CRC_BYTES], data[-CRC_BYTES:]
    return zlib.crc32(body) == int.from_bytes(crc, "big")


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` hands the owning replica."""

    #: The newest valid checkpoint's frame bytes (None: start empty).
    checkpoint: Optional[bytes]
    #: Generation of that checkpoint (0 when starting empty).
    checkpoint_id: int
    #: Newest META bookkeeping seen (site, mode, op_seq, revision).
    meta: Dict[str, object]
    #: Intact non-META records after the checkpoint, in log order.
    records: List[WalRecord]
    #: Bytes discarded from torn/corrupt segment tails.
    truncated_bytes: int
    #: Older checkpoint files skipped because their CRC failed.
    corrupt_checkpoints: int = 0
    #: (segment path, record) pairs backing ``records`` (internal).
    _origins: List[Tuple[Path, WalRecord]] = field(default_factory=list,
                                                   repr=False)
    _store: Optional["DurableStore"] = field(default=None, repr=False)

    @property
    def fresh(self) -> bool:
        """True when there is nothing to recover (new directory)."""
        return self.checkpoint is None and not self.records

    def truncate_from(self, index: int) -> None:
        """Owner-side truncation: record ``index`` failed to *decode*
        despite an intact CRC (damage the header CRC cannot see, e.g. a
        flip inside a record written torn). Everything from it on is
        discarded, on disk too."""
        if self._store is None or index >= len(self.records):
            return
        path, record = self._origins[index]
        self._store._truncate_segment(path, record.offset)
        del self.records[index:]
        del self._origins[index:]


class DurableStore:
    """Append-only WAL + checkpoints + recovery for one replica.

    Parameters
    ----------
    root:
        Directory owning the log (created if missing).
    checkpoint_every:
        Logged events (envelopes/batches) between automatic
        checkpoints; the owner polls :meth:`checkpoint_due`. ``None``
        disables cadence-driven checkpoints (explicit ones still work).
    retain:
        Previous generations (checkpoint + WAL segment pairs) kept
        after a checkpoint, as insurance against at-rest damage of the
        newest checkpoint.
    fsync:
        fsync every append and checkpoint (the durable default); turn
        off only for tests and simulations where the process outlives
        every "crash".
    crash_points:
        Optional :class:`repro.storage.crash.CrashInjector` evaluated
        at every protocol step.
    """

    def __init__(self, root, checkpoint_every: Optional[int] = 64,
                 retain: int = 1, fsync: bool = True,
                 crash_points: Optional[CrashInjector] = None) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise StorageError("checkpoint_every must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.retain = retain
        self.fsync = fsync
        self.crash_points = crash_points
        self._meta: Dict[str, object] = {}
        self._segment_id = 0
        self._handle = None
        self._closed = False
        #: Monitoring counters.
        self.records_appended = 0
        self.bytes_appended = 0
        self.checkpoints_written = 0
        self.records_since_checkpoint = 0
        self._recovered: Optional[RecoveredState] = None

    # -- identity -----------------------------------------------------------------

    def attach(self, site: int, mode: str) -> None:
        """Bind the store to one replica's identity; recovering a
        store written by a different site or document mode is refused
        (a deployment mix-up, not data damage)."""
        known_site = self._meta.get("site")
        known_mode = self._meta.get("mode")
        if known_site is not None and known_site != site:
            raise StorageError(
                f"store {self.root} belongs to site {known_site}, "
                f"not {site}"
            )
        if known_mode is not None and known_mode != mode:
            raise StorageError(
                f"store {self.root} holds a {known_mode} document, "
                f"not {mode}"
            )
        self._meta["site"] = site
        self._meta["mode"] = mode

    # -- appending ----------------------------------------------------------------

    def append(self, kind: int, payload: bytes = b"") -> None:
        """Append one record (and fsync it, by default) — the log-
        before-apply step of the durability protocol."""
        if self._closed:
            raise StorageError(f"store {self.root} is closed")
        self._crash("wal.append.before")
        record = pack_record(kind, payload)
        handle = self._append_handle()
        injector = self.crash_points
        if injector is not None:
            keep = injector.torn_write("wal.append.torn", len(record))
            if keep is not None:
                # The torn write: a prefix of the record reaches the
                # file, then the process dies.
                handle.write(record[:keep])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
                raise CrashError("injected crash mid-append (torn write)")
        handle.write(record)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._crash("wal.append.after")
        self.records_appended += 1
        self.bytes_appended += len(record)
        if kind in _COUNTED:
            self.records_since_checkpoint += 1

    def checkpoint_due(self) -> bool:
        """Whether the cadence asks for a checkpoint now."""
        return (
            self.checkpoint_every is not None
            and self.records_since_checkpoint >= self.checkpoint_every
        )

    # -- checkpointing -------------------------------------------------------------

    def write_checkpoint(self, frame: bytes,
                         meta: Optional[Dict[str, object]] = None) -> Path:
        """Persist ``frame`` (an encoded SyncResponse) as the new
        checkpoint, rotate the WAL, prune old generations."""
        if self._closed:
            raise StorageError(f"store {self.root} is closed")
        if not _crc_valid(frame):
            raise StorageError(
                "checkpoint frame is not CRC-terminated; encode it with "
                "repro.replication.wire.encode_wire"
            )
        if meta:
            self._meta.update(meta)
        cp_id = self._segment_id + 1
        path = _checkpoint_path(self.root, cp_id)
        self._crash("checkpoint.before")
        atomic_write_bytes(
            path, frame, fsync=self.fsync,
            before_replace=lambda: self._crash("checkpoint.rename"),
        )
        self._crash("checkpoint.after_write")
        self._open_segment(cp_id)
        self._crash("checkpoint.after_rotate")
        self._write_manifest(cp_id)
        self._prune(cp_id)
        self.checkpoints_written += 1
        self.records_since_checkpoint = 0
        return path

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Read the directory back: newest valid checkpoint + the
        intact WAL tail (see the module docstring's state machine).
        Also repairs the files — torn tails are truncated — and leaves
        the store positioned to append after the last intact record.
        """
        checkpoints = sorted(self.root.glob(_CHECKPOINT_GLOB))
        segments = sorted(self.root.glob(_SEGMENT_GLOB))
        checkpoint_bytes: Optional[bytes] = None
        checkpoint_id = 0
        corrupt = 0
        for path in reversed(checkpoints):
            data = path.read_bytes()
            if _crc_valid(data):
                checkpoint_bytes = data
                checkpoint_id = _file_id(path)
                break
            corrupt += 1
        records: List[WalRecord] = []
        origins: List[Tuple[Path, WalRecord]] = []
        meta: Dict[str, object] = {}
        truncated = 0
        highest = checkpoint_id
        damaged = False
        for path in segments:
            seg_id = _file_id(path)
            if seg_id < checkpoint_id:
                continue
            if damaged:
                # Records beyond a damaged segment are causally suspect:
                # drop the whole later segment (recovery truncates to
                # the last good record, globally).
                truncated += path.stat().st_size
                path.unlink()
                continue
            highest = max(highest, seg_id)
            seg_records, good_end, size = read_segment(path)
            for record in seg_records:
                if record.kind == RECORD_META:
                    try:
                        meta.update(json.loads(record.payload))
                    except ValueError:
                        pass  # bookkeeping only; never fatal
                    continue
                records.append(record)
                origins.append((path, record))
            if good_end != size:
                truncated += size - good_end
                self._truncate_segment(path, good_end)
                damaged = True
        self._meta.update(
            {k: v for k, v in meta.items() if k in
             ("site", "mode", "op_seq", "revision")}
        )
        self._segment_id = highest
        self._handle = None
        recovered = RecoveredState(
            checkpoint=checkpoint_bytes,
            checkpoint_id=checkpoint_id,
            meta=dict(meta),
            records=records,
            truncated_bytes=truncated,
            corrupt_checkpoints=corrupt,
            _origins=origins,
            _store=self,
        )
        self.records_since_checkpoint = sum(
            1 for r in records if r.kind in _COUNTED
        )
        self._recovered = recovered
        return recovered

    # -- introspection -------------------------------------------------------------

    @property
    def segment_id(self) -> int:
        return self._segment_id

    @property
    def wal_path(self) -> Path:
        return _segment_path(self.root, self._segment_id)

    @property
    def wal_bytes(self) -> int:
        """Size of the current WAL segment on disk."""
        path = self.wal_path
        return path.stat().st_size if path.exists() else 0

    def manifest(self) -> Optional[Dict[str, object]]:
        """The manifest contents, if present and parseable."""
        path = self.root / _MANIFEST
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True

    # -- internals ----------------------------------------------------------------

    def _crash(self, point: str) -> None:
        if self.crash_points is not None:
            self.crash_points.check(point)

    def _append_handle(self):
        if self._handle is None:
            path = self.wal_path
            fresh = not path.exists()
            self._handle = open(path, "ab")
            if fresh:
                self._write_meta_record()
                if self.fsync:
                    fsync_dir(self.root)
        return self._handle

    def _write_meta_record(self) -> None:
        payload = json.dumps(
            {"format": 1, "segment": self._segment_id, **self._meta},
            sort_keys=True,
        ).encode("utf-8")
        record = pack_record(RECORD_META, payload)
        self._handle.write(record)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.bytes_appended += len(record)

    def _open_segment(self, seg_id: int) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segment_id = seg_id
        # The META record is written on first open (lazily via
        # _append_handle), but rotation creates the segment eagerly so
        # recovery can tell "rotated, nothing logged yet" from "crash
        # before rotation".
        self._append_handle()

    def _write_manifest(self, cp_id: int) -> None:
        manifest = {
            "format": 1,
            "checkpoint": cp_id,
            "segment": self._segment_id,
            **self._meta,
            "checkpoints_written": self.checkpoints_written + 1,
        }
        atomic_write_bytes(
            self.root / _MANIFEST,
            (json.dumps(manifest, sort_keys=True, indent=2) + "\n")
            .encode("utf-8"),
            fsync=self.fsync,
        )

    def _prune(self, cp_id: int) -> None:
        self._crash("prune.before")
        keep_from = cp_id - self.retain
        for path in sorted(self.root.glob(_CHECKPOINT_GLOB)):
            if _file_id(path) < keep_from:
                path.unlink()
        for path in sorted(self.root.glob(_SEGMENT_GLOB)):
            if _file_id(path) < keep_from:
                path.unlink()

    def _truncate_segment(self, path: Path, offset: int) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        with open(path, "rb+") as handle:
            handle.truncate(offset)
            if self.fsync:
                os.fsync(handle.fileno())
