"""Durable sites: write-ahead log, checkpoints, and crash recovery.

The storage layer makes a replica survive process death: every applied
envelope or batch is appended to a write-ahead log *before* it is
acknowledged, the document is periodically checkpointed through the
same state-transfer frame anti-entropy uses, and startup recovery is
"newest valid checkpoint + WAL tail replay", after which the replica
rejoins the cluster through the ordinary sync protocol.
"""

from repro.storage.crash import (
    CrashError,
    CrashInjector,
    tear_file,
    tear_store,
)
from repro.storage.store import DurableStore, RecoveredState
from repro.storage.wal import (
    RECORD_DRAIN,
    RECORD_ENVELOPE,
    RECORD_HEADER_BYTES,
    RECORD_LOCAL,
    RECORD_META,
    RECORD_OUTBOX,
    RECORD_REMOTE,
    WalRecord,
    pack_record,
    read_segment,
    scan_records,
)

__all__ = [
    "CrashError",
    "CrashInjector",
    "DurableStore",
    "RecoveredState",
    "RECORD_DRAIN",
    "RECORD_ENVELOPE",
    "RECORD_HEADER_BYTES",
    "RECORD_LOCAL",
    "RECORD_META",
    "RECORD_OUTBOX",
    "RECORD_REMOTE",
    "WalRecord",
    "pack_record",
    "read_segment",
    "scan_records",
    "tear_file",
    "tear_store",
]
