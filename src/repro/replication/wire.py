"""The peer protocol: every replication message as bytes on the wire.

The paper's system model is asynchronous message passing over fair-lossy
links; nothing but bytes ever crosses a link. This module defines the
complete frame vocabulary one replica site may send another — the only
payloads :class:`repro.replication.network.SimulatedNetwork` accepts:

- :class:`EnvelopeFrame` — a causal-broadcast event: the sender's
  vector clock plus an encoded v2 batch frame (or bare v1 operation)
  from :mod:`repro.core.encoding`;
- :class:`AckFrame` — a gossiped applied-clock acknowledgement (drives
  the causal-stability frontier for SDIS tombstone GC);
- :class:`SyncRequest` — an anti-entropy probe: the requester's clock;
- :class:`SyncResponse` — the anti-entropy answer: one encoded state
  frame, the sender's frontier, and the sender's outstanding delete
  log (so a synced SDIS replica can purge inherited tombstones once
  they become causally stable);
- :class:`SyncDelta` — the *incremental* anti-entropy answer: state
  segments covering only the regions the requester's frontier has not
  seen, plus the responder's recent delete records (DESIGN.md §10);
- :class:`SyncDecline` — a graceful refusal with a reason and an
  optional try-this-peer hint, so a requester rotates instead of
  re-pelting a responder that cannot serve;
- the flatten commitment messages (:class:`~repro.replication.commit.
  PrepareMsg`, :class:`~repro.replication.commit.VoteMsg`,
  :class:`~repro.replication.commit.AbortMsg`) — serialized here, the
  protocol itself lives in :mod:`repro.replication.commit`.

Frame grammar (DESIGN.md §8): a wire frame opens with the shared v2
escape (2-bit tag ``3``), the reserved frame kind
:data:`repro.core.encoding.FRAME_WIRE`, and a 4-bit wire kind; the body
follows, then the stream is byte-padded and a 32-bit CRC over all body
bytes closes the frame. Vector clocks travel as a gamma-coded entry
count followed by ``(site, gamma(counter))`` pairs — a compact varint
layout whose cost tracks the number of *sites*, not the amount of
history. Embedded core payloads (batch/state frames) ride as a
gamma-coded bit length plus their own bytes, so the inner codec stays
byte-for-byte the one :mod:`repro.core.encoding` defines.

``decode_wire`` is the single entry point: it verifies the CRC first
(raising :class:`repro.errors.CorruptFrameError` on a mismatch — the
receiver's reaction to a bit flip in transit) and then parses under the
same typed-:class:`repro.errors.DecodeError` discipline as the core
decoders. The simulated network treats a handler raising
:class:`DecodeError` as a lost transmission and retransmits, closing
the corruption → detection → retry loop end to end.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.core.disambiguator import SITE_ID_BITS, SiteId
from repro.core.encoding import (
    FRAME_KIND_BITS,
    FRAME_TAG,
    FRAME_WIRE,
    MODE_TAGS,
    TAG_MODES,
    DocumentState,
    decode_frame,
    decode_guarded,
    finish_decode,
    read_posid,
    read_text,
    start_decode,
    write_posid,
    write_text,
)
from repro.core.encoding import read_segments, write_segments
from repro.core.ops import InsertOp, OpBatch, Operation
from repro.core.path import PosID
from repro.core.runs import AtomRun, Segment
from repro.errors import CorruptFrameError, DecodeError, EncodingError
from repro.replication.clock import VectorClock
from repro.replication.commit import AbortMsg, PrepareMsg, VoteMsg
from repro.util.bits import BitReader, BitWriter

# Wire frame kinds (4 bits after the FRAME_WIRE escape).
_KIND_ENVELOPE = 0
_KIND_ACK = 1
_KIND_SYNC_REQUEST = 2
_KIND_SYNC_RESPONSE = 3
_KIND_PREPARE = 4
_KIND_VOTE = 5
_KIND_ABORT = 6
_KIND_SYNC_DELTA = 7
_KIND_SYNC_DECLINE = 8

_WIRE_KIND_BITS = 4

#: Human names of the wire kinds, for error attribution and the
#: daemon's per-frame-kind counters.
WIRE_KIND_NAMES = {
    _KIND_ENVELOPE: "envelope",
    _KIND_ACK: "ack",
    _KIND_SYNC_REQUEST: "sync_request",
    _KIND_SYNC_RESPONSE: "sync_response",
    _KIND_PREPARE: "prepare",
    _KIND_VOTE: "vote",
    _KIND_ABORT: "abort",
    _KIND_SYNC_DELTA: "sync_delta",
    _KIND_SYNC_DECLINE: "sync_decline",
}

#: ``SyncDecline`` reasons: the responder cannot serve this request.
DECLINE_NOT_AHEAD = 0   #: requester's frontier is not behind ours
DECLINE_BUSY = 1        #: responder is itself fighting a causal gap
DECLINE_TRY_PEER = 2    #: we cannot help, but ``hint`` probably can

_DECLINE_REASON_BITS = 2
_DECLINE_REASONS = (DECLINE_NOT_AHEAD, DECLINE_BUSY, DECLINE_TRY_PEER)

#: Bytes of the trailing integrity check (CRC-32 over the body bytes).
CRC_BYTES = 4

#: One delete-log entry: (tombstone PosID, delete origin, sequence).
DeleteLogEntry = Tuple[PosID, SiteId, int]


# ---------------------------------------------------------------------------
# Frame dataclasses.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnvelopeFrame:
    """A causal-broadcast event, stamped with its origin's clock.

    ``clock`` includes the message's own event (the message is the
    ``clock.get(origin)``-th event of ``origin``); ``payload`` is the
    encoded batch frame or bare v1 operation, exactly as
    :mod:`repro.core.encoding` wrote it, with its bit length alongside
    so padding bits never become ambiguous.
    """

    origin: SiteId
    clock: VectorClock
    payload: bytes
    payload_bits: int

    @property
    def sequence(self) -> int:
        return self.clock.get(self.origin)

    def decode_payload(self) -> Union[Operation, OpBatch]:
        """The carried event, decoded (one batch or one operation)."""
        return decode_frame(self.payload, self.payload_bits)


@dataclass(frozen=True)
class AckFrame:
    """Gossiped acknowledgement: ``site`` has applied ``applied``."""

    site: SiteId
    applied: VectorClock


@dataclass(frozen=True)
class SyncRequest:
    """An anti-entropy probe: ``requester`` asks a peer for a state
    snapshot if the peer is ahead of ``clock``."""

    requester: SiteId
    clock: VectorClock


@dataclass(frozen=True)
class SyncResponse:
    """An anti-entropy answer: one replica's document state, causal
    frontier, and outstanding SDIS delete log.

    ``state`` is the encoded v2 state frame (runs + singleton records +
    digest); ``clock`` the sender's vector clock at snapshot time. A
    receiver whose clock the snapshot dominates may replace its
    document and adopt the frontier. ``delete_log`` carries the
    sender's not-yet-stable delete records so the receiver can purge
    inherited tombstones once causal stability reaches them, instead
    of waiting for a flatten.
    """

    site: SiteId
    clock: VectorClock
    state: DocumentState
    delete_log: Tuple[DeleteLogEntry, ...] = ()
    #: Lazily-cached encoded form (the frame is immutable, so the
    #: encoding is too); ``wire_bytes`` and ``to_wire`` share it.
    _encoded: List[bytes] = field(default_factory=list, repr=False,
                                  compare=False)

    def to_wire(self) -> bytes:
        """This response as one wire frame (cached)."""
        if not self._encoded:
            self._encoded.append(encode_wire(self))
        return self._encoded[0]

    @property
    def wire_bytes(self) -> int:
        """Measured bytes this response costs on the wire: the actual
        encoded frame length (state payload + clock + delete log +
        framing + CRC), not an estimate."""
        return len(self.to_wire())


#: Historical name of the anti-entropy transfer object (PR 4's direct
#: pull): the response frame *is* the transfer — one definition of the
#: state-shipping message, whether it travels or is handed over.
StateTransfer = SyncResponse


@dataclass(frozen=True)
class SyncDelta:
    """An incremental anti-entropy answer: only what the requester is
    missing.

    ``base`` echoes the requester's clock; ``clock`` is the responder's
    frontier at harvest time. ``segments`` is a faithful snapshot of
    every region the responder touched by an event *after* ``base``
    (same segment stream as a state frame — runs plus singleton
    records), and ``delete_log`` carries the responder's retained
    delete records newer than ``base`` (a UDIS delete leaves no trace
    in region state, so it must travel explicitly or the receiver would
    keep the atom alive). The receiver **merges** instead of replacing:
    duplicates are idempotent, concurrent local progress survives, and
    afterwards its clock may adopt ``clock`` pointwise — per-origin
    coverage, not whole-frontier domination.
    """

    site: SiteId
    clock: VectorClock
    base: VectorClock
    segments: Tuple[Segment, ...] = ()
    delete_log: Tuple[DeleteLogEntry, ...] = ()
    #: Lazily-cached encoded form (same discipline as SyncResponse).
    _encoded: List[bytes] = field(default_factory=list, repr=False,
                                  compare=False)

    def to_wire(self) -> bytes:
        """This delta as one wire frame (cached)."""
        if not self._encoded:
            self._encoded.append(encode_wire(self))
        return self._encoded[0]

    @property
    def wire_bytes(self) -> int:
        """Measured bytes this delta costs on the wire."""
        return len(self.to_wire())

    @property
    def atom_count(self) -> int:
        """Live atoms the segment stream carries."""
        return sum(
            len(seg) if isinstance(seg, AtomRun) else 1
            for seg in self.segments
            if isinstance(seg, (AtomRun, InsertOp))
        )

    @property
    def run_segments(self) -> int:
        return sum(1 for seg in self.segments if isinstance(seg, AtomRun))

    @property
    def op_segments(self) -> int:
        return len(self.segments) - self.run_segments


@dataclass(frozen=True)
class SyncDecline:
    """A graceful anti-entropy refusal, instead of silence.

    The PR-5 responder stayed mute when it could not dominate the
    requester, leaving the requester to wait out another full gap-age
    window before trying anyone else. A decline is cheap, immediate
    routing information: ``reason`` says why this responder cannot
    serve (:data:`DECLINE_NOT_AHEAD`, :data:`DECLINE_BUSY`,
    :data:`DECLINE_TRY_PEER`), and ``hint`` optionally names a peer the
    responder believes is ahead (the origin of its own oldest buffered
    envelope). The requester's policy reacts by backing off this
    responder and rotating to another candidate at once.
    """

    site: SiteId
    reason: int = DECLINE_NOT_AHEAD
    hint: Optional[SiteId] = None


#: Everything :func:`decode_wire` can return.
WireFrame = Union[EnvelopeFrame, AckFrame, SyncRequest, SyncResponse,
                  SyncDelta, SyncDecline, PrepareMsg, VoteMsg, AbortMsg]


# ---------------------------------------------------------------------------
# Field codecs.
# ---------------------------------------------------------------------------


def write_clock(writer: BitWriter, clock: VectorClock) -> None:
    """Append a vector clock: gamma-coded entry count, then per entry
    the 48-bit site id and the gamma-coded counter (a varint: recent
    small counters cost a handful of bits, and the clock's wire cost
    grows with the number of sites, not with history length)."""
    entries = sorted((site, count) for site, count in clock.items() if count)
    writer.write_elias_gamma(len(entries) + 1)
    for site, count in entries:
        writer.write_bits(site, SITE_ID_BITS)
        writer.write_elias_gamma(count)


def read_clock(reader: BitReader) -> VectorClock:
    """Read a clock written by :func:`write_clock`."""
    entries = reader.read_elias_gamma() - 1
    counts = {}
    for _ in range(entries):
        site = reader.read_bits(SITE_ID_BITS)
        counts[site] = reader.read_elias_gamma()
    return VectorClock(counts)


def _write_payload(writer: BitWriter, payload: bytes, bits: int) -> None:
    """Append an embedded core payload: gamma-coded bit length plus the
    payload's bytes (its own padding included, so the inner bytes stay
    identical to what the core encoder produced). The byte count must
    match the bit length exactly — the reader recovers it as
    ``ceil(bits / 8)``, so any other length could not round-trip."""
    if len(payload) != (bits + 7) // 8:
        raise EncodingError(
            f"payload of {len(payload)} bytes does not match its "
            f"declared {bits} bits"
        )
    writer.write_elias_gamma(bits + 1)
    writer.write_bytes(payload)


def _read_payload(reader: BitReader) -> Tuple[bytes, int]:
    bits = reader.read_elias_gamma() - 1
    return reader.read_bytes((bits + 7) // 8), bits


def _write_state(writer: BitWriter, state: DocumentState) -> None:
    writer.write_bits(state.site, SITE_ID_BITS)
    writer.write_bit(MODE_TAGS[state.mode])
    write_text(writer, state.digest)
    writer.write_elias_gamma(state.atom_count + 1)
    writer.write_elias_gamma(state.run_segments + 1)
    writer.write_elias_gamma(state.op_segments + 1)
    _write_payload(writer, state.frame, state.frame_bits)


def _read_state(reader: BitReader) -> DocumentState:
    site = reader.read_bits(SITE_ID_BITS)
    mode = TAG_MODES[reader.read_bit()]
    digest = read_text(reader)
    atom_count = reader.read_elias_gamma() - 1
    run_segments = reader.read_elias_gamma() - 1
    op_segments = reader.read_elias_gamma() - 1
    frame, frame_bits = _read_payload(reader)
    return DocumentState(site, mode, frame, frame_bits, digest,
                         atom_count, run_segments, op_segments)


def _write_delete_log(writer: BitWriter,
                      log: Tuple[DeleteLogEntry, ...]) -> None:
    writer.write_elias_gamma(len(log) + 1)
    for posid, origin, sequence in log:
        write_posid(writer, posid)
        writer.write_bits(origin, SITE_ID_BITS)
        writer.write_elias_gamma(sequence + 1)


def _read_delete_log(reader: BitReader) -> Tuple[DeleteLogEntry, ...]:
    entries = reader.read_elias_gamma() - 1
    log = []
    for _ in range(entries):
        posid = read_posid(reader)
        origin = reader.read_bits(SITE_ID_BITS)
        sequence = reader.read_elias_gamma() - 1
        log.append((posid, origin, sequence))
    return tuple(log)


# ---------------------------------------------------------------------------
# Frame encoding.
# ---------------------------------------------------------------------------


def encode_wire(frame: WireFrame) -> bytes:
    """Encode any peer-protocol frame as self-describing bytes.

    Layout: escape tag | FRAME_WIRE kind | 4-bit wire kind | body,
    byte-padded, then a 32-bit CRC over everything before it.
    """
    writer = BitWriter()
    writer.write_bits(FRAME_TAG, 2)
    writer.write_bits(FRAME_WIRE, FRAME_KIND_BITS)
    if isinstance(frame, EnvelopeFrame):
        writer.write_bits(_KIND_ENVELOPE, _WIRE_KIND_BITS)
        writer.write_bits(frame.origin, SITE_ID_BITS)
        write_clock(writer, frame.clock)
        _write_payload(writer, frame.payload, frame.payload_bits)
    elif isinstance(frame, AckFrame):
        writer.write_bits(_KIND_ACK, _WIRE_KIND_BITS)
        writer.write_bits(frame.site, SITE_ID_BITS)
        write_clock(writer, frame.applied)
    elif isinstance(frame, SyncRequest):
        writer.write_bits(_KIND_SYNC_REQUEST, _WIRE_KIND_BITS)
        writer.write_bits(frame.requester, SITE_ID_BITS)
        write_clock(writer, frame.clock)
    elif isinstance(frame, SyncResponse):
        writer.write_bits(_KIND_SYNC_RESPONSE, _WIRE_KIND_BITS)
        writer.write_bits(frame.site, SITE_ID_BITS)
        write_clock(writer, frame.clock)
        _write_state(writer, frame.state)
        _write_delete_log(writer, tuple(frame.delete_log))
    elif isinstance(frame, SyncDelta):
        writer.write_bits(_KIND_SYNC_DELTA, _WIRE_KIND_BITS)
        writer.write_bits(frame.site, SITE_ID_BITS)
        write_clock(writer, frame.clock)
        write_clock(writer, frame.base)
        write_segments(writer, list(frame.segments))
        _write_delete_log(writer, tuple(frame.delete_log))
    elif isinstance(frame, SyncDecline):
        writer.write_bits(_KIND_SYNC_DECLINE, _WIRE_KIND_BITS)
        writer.write_bits(frame.site, SITE_ID_BITS)
        if frame.reason not in _DECLINE_REASONS:
            raise EncodingError(f"unknown decline reason {frame.reason}")
        writer.write_bits(frame.reason, _DECLINE_REASON_BITS)
        if frame.hint is None:
            writer.write_bit(0)
        else:
            writer.write_bit(1)
            writer.write_bits(frame.hint, SITE_ID_BITS)
    elif isinstance(frame, PrepareMsg):
        writer.write_bits(_KIND_PREPARE, _WIRE_KIND_BITS)
        write_text(writer, frame.txn)
        write_posid(writer, frame.path)
        write_clock(writer, frame.snapshot)
        writer.write_bits(frame.initiator, SITE_ID_BITS)
    elif isinstance(frame, VoteMsg):
        writer.write_bits(_KIND_VOTE, _WIRE_KIND_BITS)
        write_text(writer, frame.txn)
        writer.write_bits(frame.voter, SITE_ID_BITS)
        writer.write_bit(int(frame.yes))
    elif isinstance(frame, AbortMsg):
        writer.write_bits(_KIND_ABORT, _WIRE_KIND_BITS)
        write_text(writer, frame.txn)
    else:
        raise EncodingError(f"unknown wire frame {frame!r}")
    body = writer.getvalue()
    return body + zlib.crc32(body).to_bytes(CRC_BYTES, "big")


def _read_wire(reader: BitReader) -> WireFrame:
    if reader.read_bits(2) != FRAME_TAG:
        raise EncodingError("not a wire frame (missing escape tag)")
    if reader.read_bits(FRAME_KIND_BITS) != FRAME_WIRE:
        raise EncodingError(
            "core v2 frame where a peer-protocol frame was expected"
        )
    kind = reader.read_bits(_WIRE_KIND_BITS)
    if kind == _KIND_ENVELOPE:
        origin = reader.read_bits(SITE_ID_BITS)
        clock = read_clock(reader)
        payload, bits = _read_payload(reader)
        return EnvelopeFrame(origin, clock, payload, bits)
    if kind == _KIND_ACK:
        site = reader.read_bits(SITE_ID_BITS)
        return AckFrame(site, read_clock(reader))
    if kind == _KIND_SYNC_REQUEST:
        requester = reader.read_bits(SITE_ID_BITS)
        return SyncRequest(requester, read_clock(reader))
    if kind == _KIND_SYNC_RESPONSE:
        site = reader.read_bits(SITE_ID_BITS)
        clock = read_clock(reader)
        state = _read_state(reader)
        return SyncResponse(site, clock, state, _read_delete_log(reader))
    if kind == _KIND_SYNC_DELTA:
        site = reader.read_bits(SITE_ID_BITS)
        clock = read_clock(reader)
        base = read_clock(reader)
        segments = tuple(read_segments(reader))
        return SyncDelta(site, clock, base, segments,
                         _read_delete_log(reader))
    if kind == _KIND_SYNC_DECLINE:
        site = reader.read_bits(SITE_ID_BITS)
        reason = reader.read_bits(_DECLINE_REASON_BITS)
        if reason not in _DECLINE_REASONS:
            raise DecodeError(f"unknown decline reason {reason}")
        hint = reader.read_bits(SITE_ID_BITS) if reader.read_bit() else None
        return SyncDecline(site, reason, hint)
    if kind == _KIND_PREPARE:
        txn = read_text(reader)
        path = read_posid(reader)
        snapshot = read_clock(reader)
        return PrepareMsg(txn, path, snapshot,
                          reader.read_bits(SITE_ID_BITS))
    if kind == _KIND_VOTE:
        txn = read_text(reader)
        voter = reader.read_bits(SITE_ID_BITS)
        return VoteMsg(txn, voter, bool(reader.read_bit()))
    if kind == _KIND_ABORT:
        return AbortMsg(read_text(reader))
    raise EncodingError(f"unknown wire frame kind {kind}")


def peek_wire_kind(data: bytes) -> Optional[str]:
    """Best-effort frame-kind attribution from the first header byte.

    The whole wire header — escape tag, ``FRAME_WIRE``, and the 4-bit
    wire kind — packs into exactly one byte, so a single intact byte
    names the frame kind even when the rest is damaged. Returns None
    for anything that does not look like a wire-frame header (empty
    input, a core frame, a flipped header byte). Purely advisory: the
    daemon's admission gate and error attribution read it; decoding
    never trusts it.
    """
    if not isinstance(data, (bytes, bytearray)) or not data:
        return None
    first = data[0]
    if first >> 6 != FRAME_TAG:
        return None
    if (first >> 4) & ((1 << FRAME_KIND_BITS) - 1) != FRAME_WIRE:
        return None
    return WIRE_KIND_NAMES.get(first & 0x0F)


def decode_wire(data: bytes) -> WireFrame:
    """Decode one peer-protocol frame.

    The CRC is verified before any parsing: damaged bytes raise
    :class:`repro.errors.CorruptFrameError` (a :class:`DecodeError`),
    which the simulated network treats as a lost transmission. Valid
    CRC but malformed contents — the hallmark of a sender bug, not of
    transit damage — still raise the plain :class:`DecodeError`.

    Every raised error carries attribution context: the frame kind
    when the header byte survived (:func:`peek_wire_kind`), the
    payload length, and — for parse failures past an intact CRC — the
    byte offset where decoding stopped. A CRC mismatch leaves the
    offset None: the damage location is unknowable from the checksum.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise DecodeError(
            f"wire frames are bytes, got {type(data).__name__}"
        )
    kind_name = peek_wire_kind(data)
    if len(data) <= CRC_BYTES:
        raise CorruptFrameError(
            f"wire frame too short ({len(data)} bytes)",
            frame_kind=kind_name, length=len(data),
        )
    body, crc = bytes(data[:-CRC_BYTES]), data[-CRC_BYTES:]
    if zlib.crc32(body) != int.from_bytes(crc, "big"):
        raise CorruptFrameError("wire frame CRC mismatch",
                                frame_kind=kind_name, length=len(data))
    reader = start_decode(body, None)
    try:
        frame = decode_guarded(_read_wire, reader, "wire frame")
        finish_decode(reader, "wire frame")
    except DecodeError as exc:
        if exc.frame_kind is None:
            exc.frame_kind = kind_name
        if exc.offset is None:
            exc.offset = reader.bit_position // 8
        if exc.length is None:
            exc.length = len(data)
        raise
    if isinstance(frame, (SyncResponse, SyncDelta)):
        # Seed the encoding cache with the bytes as received, so
        # ``wire_bytes`` on the receiver is the measured frame length
        # without paying a full re-encode.
        frame._encoded.append(bytes(data))
    return frame
