"""A replica site: one Treedoc wired to causal broadcast and commitment.

``ReplicaSite`` is the unit of the multi-site simulations: local edits
apply immediately (optimistic, zero latency — section 6: "common edit
operations execute optimistically, with no latency; replicas synchronise
only in the background") and ship on the causal channel; remote
operations replay on causal delivery; ``initiate_flatten`` runs the
section 4.2.1 commitment protocol.

Everything a site puts on the network is **bytes**: one handler
(:meth:`_on_message`) decodes each incoming wire frame
(:mod:`repro.replication.wire`) and dispatches — causal envelopes to
the broadcast layer, commitment messages to the 2PC machinery, ack
gossip to the stability tracker, and anti-entropy traffic
(``SyncRequest``/``SyncResponse``) to the state-transfer responder.
A site is therefore also an anti-entropy *server*: any peer may ask it
for a snapshot, and :class:`repro.replication.sync.AntiEntropyPolicy`
decides when this site becomes the *client* and asks one itself.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.disambiguator import SiteId
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, OpBatch, Operation
from repro.core.path import PosID
from repro.core.treedoc import Treedoc
from repro.errors import (
    CommitError,
    DecodeError,
    ReplicationError,
    StaleStateError,
    StorageError,
    SyncError,
)
from repro.replication.broadcast import CausalBroadcast
from repro.replication.clock import VectorClock
from repro.replication.commit import (
    AbortMsg,
    CommitDecision,
    FlattenCoordinator,
    PrepareMsg,
    RegionLockTable,
    VoteMsg,
)
from repro.replication.network import SimulatedNetwork
from repro.replication.wire import (
    AckFrame,
    EnvelopeFrame,
    SyncRequest,
    SyncResponse,
    WireFrame,
    decode_wire,
    encode_wire,
)


class RegionLockedError(ReplicationError):
    """A local edit hit a region locked by a pending flatten."""


class ReplicaSite:
    """One cooperative-editing participant."""

    def __init__(
        self,
        site: SiteId,
        network: SimulatedNetwork,
        mode: str = "udis",
        balanced: bool = True,
        tombstone_gc: bool = False,
        policy: Optional["AntiEntropyPolicy"] = None,
        store: Optional["DurableStore"] = None,
    ) -> None:
        from repro.replication.sync import AntiEntropyPolicy

        self.site = site
        self.network = network
        self.doc = Treedoc(site, mode=mode, balanced=balanced)
        self.broadcast = CausalBroadcast(
            site, network, self._on_causal_deliver, register=False
        )
        network.register(site, self._on_message)
        self._locks = RegionLockTable()
        self._coordinators: Dict[str, FlattenCoordinator] = {}
        self._txn_counter = itertools.count()
        #: Region-edit log for commitment votes: (bits, origin, sequence).
        self._region_log: List[Tuple[Tuple[int, ...], SiteId, int]] = []
        #: Operations applied, in local application order (for metrics).
        self.applied_ops: List[Operation] = []
        #: SDIS tombstone GC (section 4.2): causal-stability tracking.
        #: Acks ride the wire as AckFrames and purging is a
        #: deterministic function of (delete log, frontier), so every
        #: site purges a tombstone before applying anything that could
        #: re-mint its identifier.
        self.tombstone_gc = tombstone_gc and self.doc.keeps_tombstones
        self._stability: Optional["StabilityTracker"] = None
        self._delete_log: List[Tuple[PosID, SiteId, int]] = []
        self.purged_tombstones = 0
        #: Anti-entropy: when this site stops waiting for replay and
        #: asks a peer for a snapshot instead.
        self.policy = policy or AntiEntropyPolicy()
        self._last_sync_request = float("-inf")
        self.sync_requests_sent = 0
        self.sync_responses_sent = 0
        self.sync_responses_applied = 0
        self.sync_responses_ignored = 0
        #: Durability (:mod:`repro.storage`): every applied envelope is
        #: journaled before it takes effect, the document checkpoints on
        #: the store's cadence, and a store with history replays it here
        #: before the site rejoins the network.
        self.store = store
        self._recovering = False
        self.recovered_events = 0
        self.reshipped_envelopes = 0
        if store is not None:
            self._recover_from_store()
            self.broadcast.journal = self._journal

    # -- local editing ------------------------------------------------------------

    def insert(self, index: int, atom: object) -> InsertOp:
        """Edit locally and broadcast; returns the operation."""
        self._check_unlocked_for_insert(index)
        op = self.doc.insert(index, atom)
        self._ship(op)
        return op

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert a consecutive run locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_unlocked_for_insert(index)
        batch = self.doc.insert_text(index, atoms)
        self._ship_batch(batch)
        return batch

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[InsertOp]:
        """Compatibility wrapper over :meth:`insert_text` (one envelope
        per run, not one per atom)."""
        return list(self.insert_text(index, atoms).ops)

    def delete(self, index: int) -> DeleteOp:
        """Delete locally and broadcast; returns the operation."""
        bits = self.doc.posid_at(index).bits()
        if self._locks.is_locked(bits):
            raise RegionLockedError(
                f"site {self.site}: delete at {index} hits a region "
                "locked by a pending flatten"
            )
        op = self.doc.delete(index)
        self._ship(op)
        if self.tombstone_gc:
            self._delete_log.append(
                (op.posid, self.site, self.broadcast.clock.get(self.site))
            )
        return op

    def delete_range(self, start: int, end: int) -> OpBatch:
        """Delete ``[start, end)`` locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_range_unlocked(start, end, "delete")
        batch = self.doc.delete_range(start, end)
        self._ship_batch(batch)
        return batch

    def replace_range(self, start: int, end: int,
                      atoms: Sequence[object]) -> OpBatch:
        """Replace ``[start, end)`` by ``atoms``; one envelope carries
        the whole modify (delete + insert)."""
        self._check_range_unlocked(start, end, "replace")
        self._check_unlocked_for_insert(start)
        batch = self.doc.replace_range(start, end, atoms)
        self._ship_batch(batch)
        return batch

    def _check_range_unlocked(self, start: int, end: int, verb: str) -> None:
        if not len(self._locks):
            return
        from repro.core.node import slot_posid

        # One live-snapshot slice instead of an index descent per atom;
        # the walk fallback covers an invalidated cache.
        slots = self.doc.tree.live_slice(start, end)
        if slots is not None:
            posids = (slot_posid(slot) for slot in slots)
        else:
            posids = (self.doc.posid_at(i) for i in range(start, end))
        for offset, posid in enumerate(posids):
            if self._locks.is_locked(posid.bits()):
                raise RegionLockedError(
                    f"site {self.site}: {verb} at {start + offset} hits a "
                    "region locked by a pending flatten"
                )

    def _check_unlocked_for_insert(self, index: int) -> None:
        """An insert lands between its neighbours; if either neighbour
        sits in a locked region the new identifier could too, so refuse
        conservatively."""
        for neighbour in (index - 1, index):
            if 0 <= neighbour < len(self.doc):
                bits = self.doc.posid_at(neighbour).bits()
                if self._locks.is_locked(bits):
                    raise RegionLockedError(
                        f"site {self.site}: insert at {index} is adjacent "
                        "to a region locked by a pending flatten"
                    )
        if len(self.doc) == 0 and len(self._locks):
            raise RegionLockedError(
                f"site {self.site}: document region locked by a pending flatten"
            )

    def _ship(self, op: Operation) -> None:
        frame = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, frame.sequence)
        self.applied_ops.append(op)
        self._maybe_checkpoint()

    def _ship_batch(self, batch: OpBatch) -> None:
        """Broadcast one causal envelope carrying the whole batch; the
        batch counts as a single causal event. The digest is stamped
        at ship time (see :meth:`repro.core.ops.OpBatch.seal`)."""
        if not batch.ops:
            return
        frame = self.broadcast.broadcast(batch.seal())
        for op in batch.ops:
            self._log_op(op, batch.origin, frame.sequence)
            if self.tombstone_gc and isinstance(op, DeleteOp):
                self._delete_log.append(
                    (op.posid, self.site, frame.sequence)
                )
        self.applied_ops.extend(batch.ops)
        self._maybe_checkpoint()

    # -- storage maintenance --------------------------------------------------------

    def note_revision(self) -> int:
        """Mark a revision boundary on the local replica (drives the
        cold-region clock behind both flatten and collapse)."""
        return self.doc.note_revision()

    def collapse_cold(self, min_age: Optional[int] = None,
                      min_atoms: Optional[int] = None) -> List[PosID]:
        """Collapse cold canonical regions into array leaves
        (section 4.2 live mixed storage).

        Unlike :meth:`initiate_flatten`, this needs no commitment
        protocol, no locks and no broadcast: collapse preserves the
        identifier structure exactly (explode-on-touch rebuilds it), so
        each site shrinks its own storage independently while staying
        convergent. Returns the collapsed regions' paths.
        """
        return self.doc.collapse_cold(min_age=min_age, min_atoms=min_atoms)

    @property
    def array_leaf_count(self) -> int:
        """Collapsed quiescent regions currently held as arrays."""
        return self.doc.array_leaf_count

    # -- durability (repro.storage) --------------------------------------------------

    def _journal(self, data: bytes) -> None:
        """The broadcast layer's durability hook: one envelope's wire
        bytes, written (and fsynced) before the envelope ships or
        applies. The checkpoint cadence is *not* checked here — a
        checkpoint must never run while an apply is mid-flight, so the
        poll sits at the quiescent points (:meth:`_maybe_checkpoint`).
        """
        from repro.storage.wal import RECORD_ENVELOPE

        self.store.append(RECORD_ENVELOPE, data)

    def _store_meta(self) -> Dict[str, object]:
        """Counters a state frame cannot carry, persisted in the WAL's
        META records and the manifest: the mint counters that make
        post-restart identifiers and batch seq ranges fresh."""
        return {
            "site": self.site,
            "mode": self.doc.mode,
            "op_seq": self.doc.op_seq,
            "dis_counter": self.doc.dis_counter,
            "revision": self.doc.revision,
        }

    def checkpoint(self) -> None:
        """Write a durable checkpoint now (the store's cadence normally
        drives this via :meth:`_maybe_checkpoint`). The checkpoint *is*
        a state-transfer frame — the same snapshot an anti-entropy peer
        would receive — so recovery and sync share one format."""
        if self.store is None:
            raise StorageError(f"site {self.site} has no durable store")
        frame = self.make_state_transfer()
        self.store.write_checkpoint(frame.to_wire(), meta=self._store_meta())

    def _maybe_checkpoint(self) -> None:
        """Poll the checkpoint cadence at a quiescent point: after a
        local edit shipped, or after one network delivery fully
        processed — never mid-apply, so the WAL rotation can only prune
        records whose effects the new checkpoint contains."""
        if self.store is None or self._recovering:
            return
        if self.store.checkpoint_due():
            self.checkpoint()

    def _recover_from_store(self) -> None:
        """Startup recovery: newest valid checkpoint + WAL tail replay.

        The checkpoint frame restores document, frontier and delete
        log; the tail's envelopes re-enter through the ordinary causal
        delivery path (the clock filters the ones the checkpoint
        already covers); own-origin tail envelopes are re-broadcast,
        because the journal writes before the network sends — a crash
        between the two must not lose the edit (receivers that did get
        the original drop the duplicate by clock). Counter restoration
        (op_seq, UDIS mint counter) is what keeps post-restart
        identifiers globally fresh.
        """
        from repro.core.disambiguator import Udis
        from repro.storage.wal import RECORD_ENVELOPE

        store = self.store
        recovered = store.recover()
        store.attach(self.site, self.doc.mode)
        self._recovering = True
        own_payloads: List[bytes] = []
        own_events: List[object] = []
        try:
            if recovered.checkpoint is not None:
                frame = decode_wire(recovered.checkpoint)
                if not isinstance(frame, SyncResponse):
                    raise StorageError(
                        f"site {self.site}: checkpoint does not hold a "
                        "state-transfer frame"
                    )
                self.doc.load_state(frame.state)
                self.broadcast.clock = frame.clock.copy()
                if self.tombstone_gc:
                    self._delete_log = [
                        (posid, origin, sequence)
                        for posid, origin, sequence in frame.delete_log
                    ]
            for index, record in enumerate(recovered.records):
                if record.kind != RECORD_ENVELOPE:
                    continue
                try:
                    frame = decode_wire(record.payload)
                    if not isinstance(frame, EnvelopeFrame):
                        raise DecodeError(
                            "WAL envelope record holds a non-envelope frame"
                        )
                    fresh = not self.broadcast.has_delivered(
                        frame.origin, frame.sequence
                    )
                    if fresh and frame.origin == self.site:
                        own_payloads.append(record.payload)
                        own_events.append(frame.decode_payload())
                    self.broadcast.on_frame(frame)
                except DecodeError:
                    # Intact CRC but undecodable content (damage inside
                    # a record written torn): truncate to the last
                    # record that decoded, like any other torn tail.
                    recovered.truncate_from(index)
                    break
                if fresh:
                    self.recovered_events += 1
            self._restore_counters(recovered.meta, own_events, Udis)
            # The op-level region log did not witness the checkpoint's
            # edits; a whole-document touch per site at the recovered
            # frontier makes this site vote No on any flatten whose
            # initiator snapshot predates what it just restored (the
            # same conservatism as adopting a state transfer).
            for site, sequence in self.broadcast.clock.items():
                self._region_log.append(((), site, sequence))
        finally:
            self._recovering = False
        for payload in own_payloads:
            self.network.broadcast(self.site, payload)
            self.reshipped_envelopes += 1

    def _restore_counters(self, meta: Dict[str, object],
                          own_events: List[object], udis_type: type) -> None:
        """Monotonic mint counters survive the crash: the META values
        cover everything up to the checkpoint; the replayed own-origin
        tail advances past them (batches carry their absolute seq
        range; bare operations each claimed one number)."""
        op_seq = int(meta.get("op_seq", 0) or 0)
        self.doc.restore_dis_counter(int(meta.get("dis_counter", 0) or 0))
        for event in own_events:
            if isinstance(event, OpBatch):
                op_seq = max(op_seq, event.seq_end)
                ops = event.ops
            else:
                op_seq += 1
                ops = (event,)
            for op in ops:
                posid = op.posid if hasattr(op, "posid") else op.path
                for element in posid.elements:
                    dis = element.dis
                    if isinstance(dis, udis_type) and dis.site == self.site:
                        self.doc.restore_dis_counter(dis.counter + 1)
        self.doc.restore_op_seq(op_seq)

    def crash(self) -> Optional["DurableStore"]:
        """Simulate process death: detach from the network with no
        graceful shutdown whatsoever — nothing flushes, nothing
        checkpoints (appends were already fsynced individually). The
        abandoned object must not be used again; resurrect the site by
        constructing a fresh one over the returned store."""
        self.network.disconnect(self.site)
        return self.store

    # -- state-transfer anti-entropy ------------------------------------------------

    def make_state_transfer(self) -> SyncResponse:
        """Snapshot this site's document, causal frontier and
        outstanding delete log for a lagging peer (the sender half of
        the anti-entropy exchange)."""
        return SyncResponse(
            self.site,
            self.broadcast.clock.copy(),
            self.doc.capture_state(),
            tuple(self._delete_log) if self.tombstone_gc else (),
        )

    def sync_from(self, peer: "ReplicaSite") -> "SyncStats":
        """Catch up to ``peer`` by state transfer instead of replay.

        A convenience for tests and tools that routes through the
        *same wire path* as the networked exchange: the peer's response
        frame is encoded to bytes and decoded back before application,
        so the byte accounting is the measured frame length and any
        encode/decode defect surfaces here too. In a live simulation
        prefer :meth:`request_sync` — the request/response then crosses
        the simulated network with its losses and corruption.
        """
        frame = decode_wire(peer.make_state_transfer().to_wire())
        return self.apply_state_transfer(frame)

    def apply_state_transfer(self, transfer: SyncResponse) -> "SyncStats":
        """Adopt a peer's state snapshot (the receiver half).

        Verifies the causal-domination precondition, replaces the
        document, adopts the frontier (buffered envelopes covered by
        the snapshot are dropped as duplicates, newer ones re-drain),
        and conservatively poisons future flatten votes for snapshots
        older than the adopted frontier. The sender's delete log rides
        along, so inherited SDIS tombstones purge as soon as causal
        stability reaches them — no flatten required.
        """
        from repro.replication.sync import SyncStats

        if transfer.site == self.site:
            raise SyncError(f"site {self.site}: cannot sync from itself")
        if not transfer.clock.dominates(self.broadcast.clock):
            lagging = ", ".join(
                f"origin {origin}: offered {transfer.clock.get(origin)}"
                f" < local {count}"
                for origin, count in sorted(self.broadcast.clock.items())
                if transfer.clock.get(origin) < count
            )
            raise StaleStateError(
                f"site {self.site}: snapshot from {transfer.site} does not "
                f"dominate this replica ({lagging}) — catch up by replay, "
                "or sync from a peer that is strictly ahead"
            )
        atoms = self.doc.load_state(transfer.state)
        self.broadcast.catch_up(transfer.clock)
        inherited = 0
        if self.tombstone_gc:
            # The snapshot replaced the document, so the sender's
            # outstanding delete log replaces ours: it names exactly
            # the tombstones the new document still holds.
            self._delete_log = [
                (posid, origin, sequence)
                for posid, origin, sequence in transfer.delete_log
            ]
            inherited = len(self._delete_log)
            if self._stability is not None:
                from repro.replication.stability import (
                    purge_stable_tombstones,
                )

                self.purged_tombstones += purge_stable_tombstones(
                    self.doc, self._delete_log,
                    self._stability.stable_frontier(),
                )
        # The op-level region log did not see the snapshot's edits; log
        # a whole-document touch per site at the adopted frontier so
        # this site votes No on any flatten whose initiator snapshot
        # predates the state it just inherited.
        for site, sequence in transfer.clock.items():
            self._region_log.append(((), site, sequence))
        if self.store is not None and not self._recovering:
            # Adopting a snapshot rewrites the document wholesale; no
            # WAL record describes that, so persist it as an immediate
            # checkpoint (a crash before this completes simply loses
            # the adoption — the policy will re-sync).
            self.checkpoint()
        return SyncStats(
            atoms=atoms,
            wire_bytes=transfer.wire_bytes,
            run_segments=transfer.state.run_segments,
            op_segments=transfer.state.op_segments,
            loaded_leaves=self.doc.array_leaf_count,
            inherited_deletes=inherited,
        )

    def request_sync(self, peer: Optional[SiteId] = None) -> bool:
        """Send a ``SyncRequest`` to ``peer`` (default: the origin of
        the oldest buffered envelope — a site provably ahead of this
        one). Returns False when no candidate peer exists. The response
        arrives over the network; run the simulation to receive it.
        """
        if peer is None:
            candidates = self.broadcast.buffered_origins()
            if not candidates:
                return False
            peer = candidates[0]
        request = SyncRequest(self.site, self.broadcast.clock.copy())
        self.network.send(self.site, peer, encode_wire(request))
        self._last_sync_request = self.network.now
        self.sync_requests_sent += 1
        return True

    def maybe_request_sync(self) -> bool:
        """Apply the anti-entropy policy: request a snapshot when the
        oldest causal gap has persisted too long (or parked too many
        envelopes), with back-off between requests. Returns whether a
        request went out. Driven by
        :meth:`repro.replication.cluster.Cluster.anti_entropy`.
        """
        blocked_since = self.broadcast.blocked_since
        if blocked_since is None:
            return False
        now = self.network.now
        if not self.policy.should_request(
            self.broadcast.buffered, now - blocked_since
        ):
            return False
        if now - self._last_sync_request < self.policy.min_request_interval:
            return False
        return self.request_sync()

    def _answer_sync_request(self, request: SyncRequest) -> None:
        """The anti-entropy responder: ship a snapshot iff this site is
        strictly ahead of the requester (otherwise the response could
        not be adopted — stay silent and let another peer, or replay,
        serve it)."""
        clock = self.broadcast.clock
        if not clock.dominates(request.clock) or clock == request.clock:
            return
        self.network.send(
            self.site, request.requester, self.make_state_transfer().to_wire()
        )
        self.sync_responses_sent += 1

    def _apply_sync_response(self, response: SyncResponse) -> None:
        """Adopt a snapshot that arrived over the network, unless this
        site advanced past it while the response was in flight."""
        try:
            self.apply_state_transfer(response)
        except SyncError:
            # Stale response (replay caught us up, or we edited since
            # the request): ignore it; the policy may re-request later.
            self.sync_responses_ignored += 1
        else:
            self.sync_responses_applied += 1

    # -- flatten / commitment -------------------------------------------------------

    def initiate_flatten(self, path: PosID) -> FlattenCoordinator:
        """Start the commitment protocol to flatten the subtree at
        ``path``. Returns the coordinator; its ``decision`` settles once
        the network delivers the votes (run the network to quiescence).
        """
        bits = path.bits()
        if self._locks.is_locked(bits):
            raise CommitError(
                f"site {self.site}: region {path!r} already has a pending flatten"
            )
        txn = f"{self.site}.{next(self._txn_counter)}"
        snapshot = self.broadcast.clock.copy()
        participants = {s for s in self.network.sites if s != self.site}
        coordinator = FlattenCoordinator(
            txn,
            path,
            participants,
            on_commit=lambda: self._commit_flatten(txn, path),
            on_abort=lambda: self._abort_flatten(txn),
        )
        self._coordinators[txn] = coordinator
        self._locks.lock(txn, path)
        if not participants:
            coordinator.decide_alone()
            return coordinator
        prepare = encode_wire(PrepareMsg(txn, path, snapshot, self.site))
        for participant in participants:
            self.network.send(self.site, participant, prepare)
        return coordinator

    def _commit_flatten(self, txn: str, path: PosID) -> None:
        op = self.doc.make_flatten(path)
        op = FlattenOp(op.path, op.digest, op.origin, txn=txn)
        self.doc.apply_flatten(op)
        self._locks.unlock(txn)
        frame = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, frame.sequence)
        self.applied_ops.append(op)

    def _abort_flatten(self, txn: str) -> None:
        self._locks.unlock(txn)
        abort = encode_wire(AbortMsg(txn))
        for participant in self.network.sites:
            if participant != self.site:
                self.network.send(self.site, participant, abort)

    def _vote(self, prepare: PrepareMsg) -> bool:
        """Section 4.2.1: vote No when this site has executed an insert,
        delete or flatten within the subtree that the initiator's
        snapshot does not cover — or when it is not yet caught up with
        the snapshot (its region contents could then differ)."""
        if not self.broadcast.clock.dominates(prepare.snapshot):
            return False
        region = prepare.path.bits()
        if self._locks.overlapping(region) is not None:
            return False
        for bits, origin, sequence in self._region_log:
            shorter = min(len(bits), len(region))
            if bits[:shorter] != region[:shorter]:
                continue
            if sequence > prepare.snapshot.get(origin):
                return False
        return True

    # -- message handling ------------------------------------------------------------

    def _on_message(self, src: SiteId, data: bytes) -> None:
        """The single network entry point: decode the wire frame, then
        dispatch. A :class:`repro.errors.DecodeError` (bit flip in
        transit) propagates to the network, which counts it as loss
        and retransmits."""
        if not isinstance(data, (bytes, bytearray)):
            raise ReplicationError(
                f"site {self.site}: non-bytes delivery {data!r} — the "
                "network carries wire frames only"
            )
        self._on_frame(src, decode_wire(data))
        # Quiescent point: the delivery (and everything it cascaded
        # into) is fully applied and journaled — safe to checkpoint.
        self._maybe_checkpoint()

    def _on_frame(self, src: SiteId, frame: WireFrame) -> None:
        if isinstance(frame, EnvelopeFrame):
            self.broadcast.on_frame(frame)
        elif isinstance(frame, AckFrame):
            self._record_ack(frame.site, frame.applied)
        elif isinstance(frame, SyncRequest):
            self._answer_sync_request(frame)
        elif isinstance(frame, SyncResponse):
            self._apply_sync_response(frame)
        elif isinstance(frame, PrepareMsg):
            yes = self._vote(frame)
            if yes:
                self._locks.lock(frame.txn, frame.path)
            self.network.send(
                self.site, frame.initiator,
                encode_wire(VoteMsg(frame.txn, self.site, yes)),
            )
        elif isinstance(frame, VoteMsg):
            coordinator = self._coordinators.get(frame.txn)
            if coordinator is None:
                raise CommitError(f"vote for unknown transaction {frame.txn}")
            coordinator.on_vote(frame)
        elif isinstance(frame, AbortMsg):
            self._locks.unlock(frame.txn)
        else:  # pragma: no cover - decode_wire yields only the above
            raise ReplicationError(f"unhandled wire frame {frame!r}")

    def _on_causal_deliver(self, origin: SiteId, payload: object) -> None:
        if isinstance(payload, OpBatch):
            self.doc.apply_batch(payload)
            sequence = self.broadcast.clock.get(origin)
            for op in payload.ops:
                self._log_op(op, origin, sequence)
                if isinstance(op, DeleteOp) and self.tombstone_gc:
                    self._delete_log.append((op.posid, origin, sequence))
                if isinstance(op, FlattenOp) and op.txn is not None:
                    # Same as the bare-operation path below: a committed
                    # flatten is the outcome message, release the vote
                    # lock (no current producer batches flattens, but
                    # apply_batch supports them).
                    self._locks.unlock(op.txn)
            self.applied_ops.extend(payload.ops)
            return
        if not isinstance(payload, (InsertOp, DeleteOp, FlattenOp)):
            raise ReplicationError(f"unexpected causal payload {payload!r}")
        self.doc.apply(payload)
        sequence = self.broadcast.clock.get(origin)
        self._log_op(payload, origin, sequence)
        self.applied_ops.append(payload)
        if isinstance(payload, DeleteOp) and self.tombstone_gc:
            self._delete_log.append((payload.posid, origin, sequence))
        if isinstance(payload, FlattenOp) and payload.txn is not None:
            # The committed flatten is the outcome message: release the
            # vote lock.
            self._locks.unlock(payload.txn)

    # -- SDIS tombstone garbage collection (section 4.2) --------------------------

    def broadcast_ack(self) -> None:
        """Gossip this site's applied clock (drives the stable frontier).

        Call periodically (the cluster harness does) when
        ``tombstone_gc`` is enabled. Acks are idempotent,
        order-insensitive clock merges, so they travel as plain wire
        frames — no causal ordering, no clock tick.
        """
        if not self.tombstone_gc:
            return
        applied = self.broadcast.clock.copy()
        self._record_ack(self.site, applied)
        self.network.broadcast(
            self.site, encode_wire(AckFrame(self.site, applied))
        )

    def _record_ack(self, site: SiteId, applied: VectorClock) -> None:
        from repro.replication.stability import (
            StabilityTracker,
            purge_stable_tombstones,
        )

        if not self.tombstone_gc:
            return
        if self._stability is None:
            self._stability = StabilityTracker(tuple(self.network.sites))
        self._stability.record_ack(site, applied)
        frontier = self._stability.stable_frontier()
        self.purged_tombstones += purge_stable_tombstones(
            self.doc, self._delete_log, frontier
        )

    def _log_op(self, op: Operation, origin: SiteId, sequence: int) -> None:
        if isinstance(op, (InsertOp, DeleteOp)):
            bits = op.posid.bits()
        else:
            bits = op.path.bits()
        self._region_log.append((bits, origin, sequence))

    # -- queries ---------------------------------------------------------------------

    def text(self, separator: str = "") -> str:
        return self.doc.text(separator)

    def atoms(self) -> List[object]:
        return self.doc.atoms()

    def __len__(self) -> int:
        return len(self.doc)

    @property
    def locked_regions(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:
        return f"<ReplicaSite {self.site} atoms={len(self.doc)}>"
