"""A replica site: one Treedoc wired to causal broadcast and commitment.

``ReplicaSite`` is the unit of the multi-site simulations: local edits
apply immediately (optimistic, zero latency — section 6: "common edit
operations execute optimistically, with no latency; replicas synchronise
only in the background") and ship on the causal channel; remote
operations replay on causal delivery; ``initiate_flatten`` runs the
section 4.2.1 commitment protocol.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.disambiguator import SiteId
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, OpBatch, Operation
from repro.core.path import PosID
from repro.core.treedoc import Treedoc
from repro.errors import CommitError, ReplicationError
from repro.replication.broadcast import CausalBroadcast, CausalEnvelope
from repro.replication.commit import (
    AbortMsg,
    CommitDecision,
    FlattenCoordinator,
    PrepareMsg,
    RegionLockTable,
    VoteMsg,
)
from repro.replication.network import SimulatedNetwork


class RegionLockedError(ReplicationError):
    """A local edit hit a region locked by a pending flatten."""


class ReplicaSite:
    """One cooperative-editing participant."""

    def __init__(
        self,
        site: SiteId,
        network: SimulatedNetwork,
        mode: str = "udis",
        balanced: bool = True,
        tombstone_gc: bool = False,
    ) -> None:
        self.site = site
        self.network = network
        self.doc = Treedoc(site, mode=mode, balanced=balanced)
        self.broadcast = CausalBroadcast(
            site, network, self._on_causal_deliver, register=False
        )
        network.register(site, self._on_message)
        self._locks = RegionLockTable()
        self._coordinators: Dict[str, FlattenCoordinator] = {}
        self._txn_counter = itertools.count()
        #: Region-edit log for commitment votes: (bits, origin, sequence).
        self._region_log: List[Tuple[Tuple[int, ...], SiteId, int]] = []
        #: Operations applied, in local application order (for metrics).
        self.applied_ops: List[Operation] = []
        #: SDIS tombstone GC (section 4.2): causal-stability tracking.
        #: Acks ride the causal channel and purging is a deterministic
        #: function of (delete log, frontier), so every site purges a
        #: tombstone before applying anything that could re-mint its
        #: identifier.
        self.tombstone_gc = tombstone_gc and self.doc.keeps_tombstones
        self._stability: Optional["StabilityTracker"] = None
        self._delete_log: List[Tuple[object, SiteId, int]] = []
        self.purged_tombstones = 0

    # -- local editing ------------------------------------------------------------

    def insert(self, index: int, atom: object) -> InsertOp:
        """Edit locally and broadcast; returns the operation."""
        self._check_unlocked_for_insert(index)
        op = self.doc.insert(index, atom)
        self._ship(op)
        return op

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert a consecutive run locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_unlocked_for_insert(index)
        batch = self.doc.insert_text(index, atoms)
        self._ship_batch(batch)
        return batch

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[InsertOp]:
        """Compatibility wrapper over :meth:`insert_text` (one envelope
        per run, not one per atom)."""
        return list(self.insert_text(index, atoms).ops)

    def delete(self, index: int) -> DeleteOp:
        """Delete locally and broadcast; returns the operation."""
        bits = self.doc.posid_at(index).bits()
        if self._locks.is_locked(bits):
            raise RegionLockedError(
                f"site {self.site}: delete at {index} hits a region "
                "locked by a pending flatten"
            )
        op = self.doc.delete(index)
        self._ship(op)
        if self.tombstone_gc:
            self._delete_log.append(
                (op.posid, self.site, self.broadcast.clock.get(self.site))
            )
        return op

    def delete_range(self, start: int, end: int) -> OpBatch:
        """Delete ``[start, end)`` locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_range_unlocked(start, end, "delete")
        batch = self.doc.delete_range(start, end)
        self._ship_batch(batch)
        return batch

    def replace_range(self, start: int, end: int,
                      atoms: Sequence[object]) -> OpBatch:
        """Replace ``[start, end)`` by ``atoms``; one envelope carries
        the whole modify (delete + insert)."""
        self._check_range_unlocked(start, end, "replace")
        self._check_unlocked_for_insert(start)
        batch = self.doc.replace_range(start, end, atoms)
        self._ship_batch(batch)
        return batch

    def _check_range_unlocked(self, start: int, end: int, verb: str) -> None:
        if not len(self._locks):
            return
        from repro.core.node import slot_posid

        # One live-snapshot slice instead of an index descent per atom;
        # the walk fallback covers an invalidated cache.
        slots = self.doc.tree.live_slice(start, end)
        if slots is not None:
            posids = (slot_posid(slot) for slot in slots)
        else:
            posids = (self.doc.posid_at(i) for i in range(start, end))
        for offset, posid in enumerate(posids):
            if self._locks.is_locked(posid.bits()):
                raise RegionLockedError(
                    f"site {self.site}: {verb} at {start + offset} hits a "
                    "region locked by a pending flatten"
                )

    def _check_unlocked_for_insert(self, index: int) -> None:
        """An insert lands between its neighbours; if either neighbour
        sits in a locked region the new identifier could too, so refuse
        conservatively."""
        for neighbour in (index - 1, index):
            if 0 <= neighbour < len(self.doc):
                bits = self.doc.posid_at(neighbour).bits()
                if self._locks.is_locked(bits):
                    raise RegionLockedError(
                        f"site {self.site}: insert at {index} is adjacent "
                        "to a region locked by a pending flatten"
                    )
        if len(self.doc) == 0 and len(self._locks):
            raise RegionLockedError(
                f"site {self.site}: document region locked by a pending flatten"
            )

    def _ship(self, op: Operation) -> None:
        envelope = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, envelope.sequence)
        self.applied_ops.append(op)

    def _ship_batch(self, batch: OpBatch) -> None:
        """Broadcast one causal envelope carrying the whole batch; the
        batch counts as a single causal event. The digest is stamped
        at ship time (see :meth:`repro.core.ops.OpBatch.seal`)."""
        if not batch.ops:
            return
        envelope = self.broadcast.broadcast(batch.seal())
        for op in batch.ops:
            self._log_op(op, batch.origin, envelope.sequence)
            if self.tombstone_gc and isinstance(op, DeleteOp):
                self._delete_log.append(
                    (op.posid, self.site, envelope.sequence)
                )
        self.applied_ops.extend(batch.ops)

    # -- storage maintenance --------------------------------------------------------

    def note_revision(self) -> int:
        """Mark a revision boundary on the local replica (drives the
        cold-region clock behind both flatten and collapse)."""
        return self.doc.note_revision()

    def collapse_cold(self, min_age: Optional[int] = None,
                      min_atoms: Optional[int] = None) -> List[PosID]:
        """Collapse cold canonical regions into array leaves
        (section 4.2 live mixed storage).

        Unlike :meth:`initiate_flatten`, this needs no commitment
        protocol, no locks and no broadcast: collapse preserves the
        identifier structure exactly (explode-on-touch rebuilds it), so
        each site shrinks its own storage independently while staying
        convergent. Returns the collapsed regions' paths.
        """
        return self.doc.collapse_cold(min_age=min_age, min_atoms=min_atoms)

    @property
    def array_leaf_count(self) -> int:
        """Collapsed quiescent regions currently held as arrays."""
        return self.doc.array_leaf_count

    # -- state-transfer anti-entropy ------------------------------------------------

    def make_state_transfer(self) -> "StateTransfer":
        """Snapshot this site's document and causal frontier for a
        lagging peer (the sender half of :meth:`sync_from`)."""
        from repro.replication.sync import StateTransfer

        return StateTransfer(
            self.site, self.broadcast.clock.copy(), self.doc.capture_state()
        )

    def sync_from(self, peer: "ReplicaSite") -> "SyncStats":
        """Catch up to ``peer`` by state transfer instead of replay.

        The peer's document arrives as one v2 state frame: collapsed
        and canonical regions as runs that load **directly into array
        leaves** — a cold 1500-line document costs a handful of
        segments, not per-atom envelopes and materializations. Safe
        only when the peer's frontier dominates this site's (this site
        has nothing the peer lacks); otherwise
        :class:`repro.errors.SyncError` is raised and nothing changes.
        """
        return self.apply_state_transfer(peer.make_state_transfer())

    def apply_state_transfer(self, transfer: "StateTransfer") -> "SyncStats":
        """Adopt a peer's state snapshot (the receiver half).

        Verifies the causal-domination precondition, replaces the
        document, adopts the frontier (buffered envelopes covered by
        the snapshot are dropped as duplicates, newer ones re-drain),
        and conservatively poisons future flatten votes for snapshots
        older than the adopted frontier. Inherited SDIS tombstones have
        no local delete-log entries, so they are purged only by a later
        flatten, not by the stability tracker.
        """
        from repro.errors import SyncError
        from repro.replication.sync import SyncStats

        if transfer.site == self.site:
            raise SyncError(f"site {self.site}: cannot sync from itself")
        if not transfer.clock.dominates(self.broadcast.clock):
            raise SyncError(
                f"site {self.site}: snapshot from {transfer.site} does not "
                "dominate this replica — catch up by replay instead"
            )
        atoms = self.doc.load_state(transfer.state)
        self.broadcast.catch_up(transfer.clock)
        # The op-level region log did not see the snapshot's edits; log
        # a whole-document touch per site at the adopted frontier so
        # this site votes No on any flatten whose initiator snapshot
        # predates the state it just inherited.
        for site, sequence in transfer.clock.items():
            self._region_log.append(((), site, sequence))
        return SyncStats(
            atoms=atoms,
            wire_bytes=transfer.wire_bytes,
            run_segments=transfer.state.run_segments,
            op_segments=transfer.state.op_segments,
            loaded_leaves=self.doc.array_leaf_count,
        )

    # -- flatten / commitment -------------------------------------------------------

    def initiate_flatten(self, path: PosID) -> FlattenCoordinator:
        """Start the commitment protocol to flatten the subtree at
        ``path``. Returns the coordinator; its ``decision`` settles once
        the network delivers the votes (run the network to quiescence).
        """
        bits = path.bits()
        if self._locks.is_locked(bits):
            raise CommitError(
                f"site {self.site}: region {path!r} already has a pending flatten"
            )
        txn = f"{self.site}.{next(self._txn_counter)}"
        snapshot = self.broadcast.clock.copy()
        participants = {s for s in self.network.sites if s != self.site}
        coordinator = FlattenCoordinator(
            txn,
            path,
            participants,
            on_commit=lambda: self._commit_flatten(txn, path),
            on_abort=lambda: self._abort_flatten(txn),
        )
        self._coordinators[txn] = coordinator
        self._locks.lock(txn, path)
        if not participants:
            coordinator.decide_alone()
            return coordinator
        prepare = PrepareMsg(txn, path, snapshot, self.site)
        for participant in participants:
            self.network.send(self.site, participant, prepare)
        return coordinator

    def _commit_flatten(self, txn: str, path: PosID) -> None:
        op = self.doc.make_flatten(path)
        op = FlattenOp(op.path, op.digest, op.origin, txn=txn)
        self.doc.apply_flatten(op)
        self._locks.unlock(txn)
        envelope = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, envelope.sequence)
        self.applied_ops.append(op)

    def _abort_flatten(self, txn: str) -> None:
        self._locks.unlock(txn)
        for participant in self.network.sites:
            if participant != self.site:
                self.network.send(self.site, participant, AbortMsg(txn))

    def _vote(self, prepare: PrepareMsg) -> bool:
        """Section 4.2.1: vote No when this site has executed an insert,
        delete or flatten within the subtree that the initiator's
        snapshot does not cover — or when it is not yet caught up with
        the snapshot (its region contents could then differ)."""
        if not self.broadcast.clock.dominates(prepare.snapshot):
            return False
        region = prepare.path.bits()
        if self._locks.overlapping(region) is not None:
            return False
        for bits, origin, sequence in self._region_log:
            shorter = min(len(bits), len(region))
            if bits[:shorter] != region[:shorter]:
                continue
            if sequence > prepare.snapshot.get(origin):
                return False
        return True

    # -- message handling ------------------------------------------------------------

    def _on_message(self, src: SiteId, message: object) -> None:
        if isinstance(message, CausalEnvelope):
            self.broadcast.on_message(src, message)
        elif isinstance(message, PrepareMsg):
            yes = self._vote(message)
            if yes:
                self._locks.lock(message.txn, message.path)
            self.network.send(
                self.site, message.initiator, VoteMsg(message.txn, self.site, yes)
            )
        elif isinstance(message, VoteMsg):
            coordinator = self._coordinators.get(message.txn)
            if coordinator is None:
                raise CommitError(f"vote for unknown transaction {message.txn}")
            coordinator.on_vote(message)
        elif isinstance(message, AbortMsg):
            self._locks.unlock(message.txn)
        else:
            raise ReplicationError(f"unhandled message {message!r}")

    def _on_causal_deliver(self, origin: SiteId, payload: object) -> None:
        from repro.replication.stability import AckMsg

        if isinstance(payload, AckMsg):
            self._record_ack(payload)
            return
        if isinstance(payload, OpBatch):
            self.doc.apply_batch(payload)
            sequence = self.broadcast.clock.get(origin)
            for op in payload.ops:
                self._log_op(op, origin, sequence)
                if isinstance(op, DeleteOp) and self.tombstone_gc:
                    self._delete_log.append((op.posid, origin, sequence))
                if isinstance(op, FlattenOp) and op.txn is not None:
                    # Same as the bare-operation path below: a committed
                    # flatten is the outcome message, release the vote
                    # lock (no current producer batches flattens, but
                    # apply_batch supports them).
                    self._locks.unlock(op.txn)
            self.applied_ops.extend(payload.ops)
            return
        if not isinstance(payload, (InsertOp, DeleteOp, FlattenOp)):
            raise ReplicationError(f"unexpected causal payload {payload!r}")
        self.doc.apply(payload)
        sequence = self.broadcast.clock.get(origin)
        self._log_op(payload, origin, sequence)
        self.applied_ops.append(payload)
        if isinstance(payload, DeleteOp) and self.tombstone_gc:
            self._delete_log.append((payload.posid, origin, sequence))
        if isinstance(payload, FlattenOp) and payload.txn is not None:
            # The committed flatten is the outcome message: release the
            # vote lock.
            self._locks.unlock(payload.txn)

    # -- SDIS tombstone garbage collection (section 4.2) --------------------------

    def broadcast_ack(self) -> None:
        """Gossip this site's applied clock (drives the stable frontier).

        Call periodically (the cluster harness does) when
        ``tombstone_gc`` is enabled.
        """
        from repro.replication.stability import AckMsg

        if not self.tombstone_gc:
            return
        ack = AckMsg(self.site, self.broadcast.clock.copy())
        self._record_ack(ack)
        self.broadcast.broadcast(ack)

    def _record_ack(self, ack: "AckMsg") -> None:
        from repro.replication.stability import (
            StabilityTracker,
            purge_stable_tombstones,
        )

        if not self.tombstone_gc:
            return
        if self._stability is None:
            self._stability = StabilityTracker(tuple(self.network.sites))
        self._stability.record_ack(ack.site, ack.applied)
        frontier = self._stability.stable_frontier()
        self.purged_tombstones += purge_stable_tombstones(
            self.doc, self._delete_log, frontier
        )

    def _log_op(self, op: Operation, origin: SiteId, sequence: int) -> None:
        if isinstance(op, (InsertOp, DeleteOp)):
            bits = op.posid.bits()
        else:
            bits = op.path.bits()
        self._region_log.append((bits, origin, sequence))

    # -- queries ---------------------------------------------------------------------

    def text(self, separator: str = "") -> str:
        return self.doc.text(separator)

    def atoms(self) -> List[object]:
        return self.doc.atoms()

    def __len__(self) -> int:
        return len(self.doc)

    @property
    def locked_regions(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:
        return f"<ReplicaSite {self.site} atoms={len(self.doc)}>"
