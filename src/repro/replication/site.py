"""A replica site: one Treedoc wired to causal broadcast and commitment.

``ReplicaSite`` is the unit of the multi-site simulations: local edits
apply immediately (optimistic, zero latency — section 6: "common edit
operations execute optimistically, with no latency; replicas synchronise
only in the background") and ship on the causal channel; remote
operations replay on causal delivery; ``initiate_flatten`` runs the
section 4.2.1 commitment protocol.

Everything a site puts on the network is **bytes**: one handler
(:meth:`_on_message`) decodes each incoming wire frame
(:mod:`repro.replication.wire`) and dispatches — causal envelopes to
the broadcast layer, commitment messages to the 2PC machinery, ack
gossip to the stability tracker, and anti-entropy traffic
(``SyncRequest``/``SyncResponse``) to the state-transfer responder.
A site is therefore also an anti-entropy *server*: any peer may ask it
for a snapshot, and :class:`repro.replication.sync.AntiEntropyPolicy`
decides when this site becomes the *client* and asks one itself.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.disambiguator import SiteId
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, OpBatch, Operation
from repro.core.path import PosID
from repro.core.treedoc import Treedoc
from repro.errors import (
    CommitError,
    DecodeError,
    ReplicationError,
    StaleStateError,
    StorageError,
    SyncError,
)
from repro.replication.broadcast import CausalBroadcast
from repro.replication.clock import VectorClock
from repro.replication.commit import (
    AbortMsg,
    CommitDecision,
    FlattenCoordinator,
    PrepareMsg,
    RegionLockTable,
    VoteMsg,
)
from repro.replication.network import SimulatedNetwork
from repro.replication.wire import (
    DECLINE_BUSY,
    DECLINE_NOT_AHEAD,
    DECLINE_TRY_PEER,
    AckFrame,
    EnvelopeFrame,
    SyncDecline,
    SyncDelta,
    SyncRequest,
    SyncResponse,
    WireFrame,
    decode_wire,
    encode_wire,
)
from repro.util.backoff import jittered
from repro.util.rng import derive_rng


class RegionLockedError(ReplicationError):
    """A local edit hit a region locked by a pending flatten."""


class ReplicaSite:
    """One cooperative-editing participant."""

    def __init__(
        self,
        site: SiteId,
        network: SimulatedNetwork,
        mode: str = "udis",
        balanced: bool = True,
        tombstone_gc: bool = False,
        policy: Optional["AntiEntropyPolicy"] = None,
        store: Optional["DurableStore"] = None,
    ) -> None:
        from repro.replication.sync import AntiEntropyPolicy

        self.site = site
        self.network = network
        self.doc = Treedoc(site, mode=mode, balanced=balanced)
        self.broadcast = CausalBroadcast(
            site, network, self._on_causal_deliver, register=False
        )
        network.register(site, self._on_message)
        self._locks = RegionLockTable()
        self._coordinators: Dict[str, FlattenCoordinator] = {}
        self._txn_counter = itertools.count()
        #: Transactions whose outcome this site has already seen. A
        #: lossy, duplicating network can deliver the AbortMsg *before*
        #: its PrepareMsg (or redeliver the prepare after the outcome);
        #: voting on a settled transaction would take a lock no later
        #: message ever releases. Bounded FIFO (txn ids, newest last).
        self._decided_txns: "OrderedDict[str, None]" = OrderedDict()
        #: Region-edit log for commitment votes and frontier-diff
        #: harvesting: (bits, origin, sequence, kind) with kind one of
        #: "i"nsert, "d"elete, "f"latten, or "*" (an opaque whole-
        #: document touch: state adoption, delta merge, recovery).
        self._region_log: List[
            Tuple[Tuple[int, ...], SiteId, int, str]
        ] = []
        #: Events at or below this frontier are known only opaquely
        #: (adopted snapshots, merged deltas, flattens, recovery): no
        #: per-operation region knowledge survives for them, so this
        #: site serves deltas only to requesters already past it.
        self._opaque_frontier = VectorClock()
        #: Recently applied deletes, posid -> (origin, sequence), kept
        #: in every mode (a UDIS delete leaves no trace in region
        #: state, so delta exchanges need the explicit record — both to
        #: ship and to guard against resurrection on merge). Pruned
        #: FIFO past :data:`_DELETE_KEEP`; ``_delete_floor`` rises to
        #: cover what was dropped, and delta service demands the
        #: requester be past the floor.
        self._recent_deletes: Dict[PosID, Tuple[SiteId, int]] = {}
        self._delete_floor = VectorClock()
        #: Operations applied, in local application order (for metrics).
        self.applied_ops: List[Operation] = []
        #: SDIS tombstone GC (section 4.2): causal-stability tracking.
        #: Acks ride the wire as AckFrames and purging is a
        #: deterministic function of (delete log, frontier), so every
        #: site purges a tombstone before applying anything that could
        #: re-mint its identifier.
        self.tombstone_gc = tombstone_gc and self.doc.keeps_tombstones
        self._stability: Optional["StabilityTracker"] = None
        #: Last (frontier, delete-log length) a purge ran against —
        #: the piggyback path's guard against re-sweeping the log on
        #: every delivered frame.
        self._purge_memo: Optional[Tuple[VectorClock, int]] = None
        self._delete_log: List[Tuple[PosID, SiteId, int]] = []
        self.purged_tombstones = 0
        #: Anti-entropy: when this site stops waiting for replay and
        #: asks a peer for a snapshot instead.
        self.policy = policy or AntiEntropyPolicy()
        self._last_sync_request = float("-inf")
        #: Earliest simulated time the next request may fire (the
        #: jittered min-interval gate; stale/declined exchanges reset
        #: it so the policy re-triggers at once instead of waiting out
        #: another full window).
        self._next_request_at = float("-inf")
        #: Deterministic jitter stream (seeded — no wall clock): every
        #: site draws from its own child of ``policy.jitter_seed``, so
        #: a hundred sites staring at the same gap desynchronize.
        self._sync_rng = derive_rng(self.policy.jitter_seed,
                                    "sync-jitter", site)
        #: Peer rotation: consecutive-failure score and earliest-retry
        #: time per responder, fed by declines and stale responses.
        self._peer_failures: Dict[SiteId, int] = {}
        self._peer_retry_at: Dict[SiteId, float] = {}
        self._peer_hint: Optional[SiteId] = None
        self.sync_requests_sent = 0
        self.sync_requests_received = 0
        self.sync_responses_sent = 0
        self.sync_responses_applied = 0
        self.sync_responses_ignored = 0
        self.sync_responses_stale = 0
        self.sync_deltas_sent = 0
        self.sync_deltas_applied = 0
        self.sync_deltas_stale = 0
        self.sync_declines_sent = 0
        self.sync_declines_received = 0
        #: Durability (:mod:`repro.storage`): every applied envelope is
        #: journaled before it takes effect, the document checkpoints on
        #: the store's cadence, and a store with history replays it here
        #: before the site rejoins the network.
        self.store = store
        self._recovering = False
        self.recovered_events = 0
        self.reshipped_envelopes = 0
        if store is not None:
            self._recover_from_store()
            self.broadcast.journal = self._journal

    # -- local editing ------------------------------------------------------------

    def insert(self, index: int, atom: object) -> InsertOp:
        """Edit locally and broadcast; returns the operation."""
        self._check_unlocked_for_insert(index)
        op = self.doc.insert(index, atom)
        self._ship(op)
        return op

    def insert_text(self, index: int, atoms: Sequence[object]) -> OpBatch:
        """Insert a consecutive run locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_unlocked_for_insert(index)
        batch = self.doc.insert_text(index, atoms)
        self._ship_batch(batch)
        return batch

    def insert_run(self, index: int, atoms: Sequence[object]) -> List[InsertOp]:
        """Compatibility wrapper over :meth:`insert_text` (one envelope
        per run, not one per atom)."""
        return list(self.insert_text(index, atoms).ops)

    def delete(self, index: int) -> DeleteOp:
        """Delete locally and broadcast; returns the operation."""
        bits = self.doc.posid_at(index).bits()
        if self._locks.is_locked(bits):
            raise RegionLockedError(
                f"site {self.site}: delete at {index} hits a region "
                "locked by a pending flatten"
            )
        op = self.doc.delete(index)
        self._ship(op)
        if self.tombstone_gc:
            self._delete_log.append(
                (op.posid, self.site, self.broadcast.clock.get(self.site))
            )
        return op

    def delete_range(self, start: int, end: int) -> OpBatch:
        """Delete ``[start, end)`` locally and broadcast it as ONE
        causal envelope; returns the batch."""
        self._check_range_unlocked(start, end, "delete")
        batch = self.doc.delete_range(start, end)
        self._ship_batch(batch)
        return batch

    def replace_range(self, start: int, end: int,
                      atoms: Sequence[object]) -> OpBatch:
        """Replace ``[start, end)`` by ``atoms``; one envelope carries
        the whole modify (delete + insert)."""
        self._check_range_unlocked(start, end, "replace")
        self._check_unlocked_for_insert(start)
        batch = self.doc.replace_range(start, end, atoms)
        self._ship_batch(batch)
        return batch

    def _check_range_unlocked(self, start: int, end: int, verb: str) -> None:
        if not len(self._locks):
            return
        from repro.core.node import slot_posid

        # One live-snapshot slice instead of an index descent per atom;
        # the walk fallback covers an invalidated cache.
        slots = self.doc.tree.live_slice(start, end)
        if slots is not None:
            posids = (slot_posid(slot) for slot in slots)
        else:
            posids = (self.doc.posid_at(i) for i in range(start, end))
        for offset, posid in enumerate(posids):
            if self._locks.is_locked(posid.bits()):
                raise RegionLockedError(
                    f"site {self.site}: {verb} at {start + offset} hits a "
                    "region locked by a pending flatten"
                )

    def _check_unlocked_for_insert(self, index: int) -> None:
        """An insert lands between its neighbours; if either neighbour
        sits in a locked region the new identifier could too, so refuse
        conservatively."""
        for neighbour in (index - 1, index):
            if 0 <= neighbour < len(self.doc):
                bits = self.doc.posid_at(neighbour).bits()
                if self._locks.is_locked(bits):
                    raise RegionLockedError(
                        f"site {self.site}: insert at {index} is adjacent "
                        "to a region locked by a pending flatten"
                    )
        if len(self.doc) == 0 and len(self._locks):
            raise RegionLockedError(
                f"site {self.site}: document region locked by a pending flatten"
            )

    def _ship(self, op: Operation) -> None:
        frame = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, frame.sequence)
        self.applied_ops.append(op)
        self._maybe_checkpoint()

    def _ship_batch(self, batch: OpBatch) -> None:
        """Broadcast one causal envelope carrying the whole batch; the
        batch counts as a single causal event. The digest is stamped
        at ship time (see :meth:`repro.core.ops.OpBatch.seal`)."""
        if not batch.ops:
            return
        frame = self.broadcast.broadcast(batch.seal())
        for op in batch.ops:
            self._log_op(op, batch.origin, frame.sequence)
            if self.tombstone_gc and isinstance(op, DeleteOp):
                self._delete_log.append(
                    (op.posid, self.site, frame.sequence)
                )
        self.applied_ops.extend(batch.ops)
        self._maybe_checkpoint()

    # -- storage maintenance --------------------------------------------------------

    def note_revision(self) -> int:
        """Mark a revision boundary on the local replica (drives the
        cold-region clock behind both flatten and collapse)."""
        return self.doc.note_revision()

    def collapse_cold(self, min_age: Optional[int] = None,
                      min_atoms: Optional[int] = None) -> List[PosID]:
        """Collapse cold canonical regions into array leaves
        (section 4.2 live mixed storage).

        Unlike :meth:`initiate_flatten`, this needs no commitment
        protocol, no locks and no broadcast: collapse preserves the
        identifier structure exactly (explode-on-touch rebuilds it), so
        each site shrinks its own storage independently while staying
        convergent. Returns the collapsed regions' paths.
        """
        return self.doc.collapse_cold(min_age=min_age, min_atoms=min_atoms)

    @property
    def array_leaf_count(self) -> int:
        """Collapsed quiescent regions currently held as arrays."""
        return self.doc.array_leaf_count

    # -- durability (repro.storage) --------------------------------------------------

    def _journal(self, data: bytes) -> None:
        """The broadcast layer's durability hook: one envelope's wire
        bytes, written (and fsynced) before the envelope ships or
        applies. The checkpoint cadence is *not* checked here — a
        checkpoint must never run while an apply is mid-flight, so the
        poll sits at the quiescent points (:meth:`_maybe_checkpoint`).
        """
        from repro.storage.wal import RECORD_ENVELOPE

        self.store.append(RECORD_ENVELOPE, data)

    def _store_meta(self) -> Dict[str, object]:
        """Counters a state frame cannot carry, persisted in the WAL's
        META records and the manifest: the mint counters that make
        post-restart identifiers and batch seq ranges fresh."""
        return {
            "site": self.site,
            "mode": self.doc.mode,
            "op_seq": self.doc.op_seq,
            "dis_counter": self.doc.dis_counter,
            "revision": self.doc.revision,
        }

    def checkpoint(self) -> None:
        """Write a durable checkpoint now (the store's cadence normally
        drives this via :meth:`_maybe_checkpoint`). The checkpoint *is*
        a state-transfer frame — the same snapshot an anti-entropy peer
        would receive — so recovery and sync share one format."""
        if self.store is None:
            raise StorageError(f"site {self.site} has no durable store")
        frame = self.make_state_transfer()
        self.store.write_checkpoint(frame.to_wire(), meta=self._store_meta())

    def _maybe_checkpoint(self) -> None:
        """Poll the checkpoint cadence at a quiescent point: after a
        local edit shipped, or after one network delivery fully
        processed — never mid-apply, so the WAL rotation can only prune
        records whose effects the new checkpoint contains."""
        if self.store is None or self._recovering:
            return
        if self.store.checkpoint_due():
            self.checkpoint()

    def _recover_from_store(self) -> None:
        """Startup recovery: newest valid checkpoint + WAL tail replay.

        The checkpoint frame restores document, frontier and delete
        log; the tail's envelopes re-enter through the ordinary causal
        delivery path (the clock filters the ones the checkpoint
        already covers); own-origin tail envelopes are re-broadcast,
        because the journal writes before the network sends — a crash
        between the two must not lose the edit (receivers that did get
        the original drop the duplicate by clock). Counter restoration
        (op_seq, UDIS mint counter) is what keeps post-restart
        identifiers globally fresh.
        """
        from repro.core.disambiguator import Udis
        from repro.storage.wal import RECORD_ENVELOPE

        store = self.store
        recovered = store.recover()
        store.attach(self.site, self.doc.mode)
        self._recovering = True
        own_payloads: List[bytes] = []
        own_events: List[object] = []
        try:
            if recovered.checkpoint is not None:
                frame = decode_wire(recovered.checkpoint)
                if not isinstance(frame, SyncResponse):
                    raise StorageError(
                        f"site {self.site}: checkpoint does not hold a "
                        "state-transfer frame"
                    )
                self.doc.load_state(frame.state)
                self.broadcast.clock = frame.clock.copy()
                if self.tombstone_gc:
                    self._delete_log = [
                        (posid, origin, sequence)
                        for posid, origin, sequence in frame.delete_log
                    ]
                for posid, origin, sequence in frame.delete_log:
                    self._note_delete(posid, origin, sequence)
            for index, record in enumerate(recovered.records):
                if record.kind != RECORD_ENVELOPE:
                    continue
                try:
                    frame = decode_wire(record.payload)
                    if not isinstance(frame, EnvelopeFrame):
                        raise DecodeError(
                            "WAL envelope record holds a non-envelope frame"
                        )
                    fresh = not self.broadcast.has_delivered(
                        frame.origin, frame.sequence
                    )
                    if fresh and frame.origin == self.site:
                        own_payloads.append(record.payload)
                        own_events.append(frame.decode_payload())
                    self.broadcast.on_frame(frame)
                except DecodeError:
                    # Intact CRC but undecodable content (damage inside
                    # a record written torn): truncate to the last
                    # record that decoded, like any other torn tail.
                    recovered.truncate_from(index)
                    break
                if fresh:
                    self.recovered_events += 1
            self._restore_counters(recovered.meta, own_events, Udis)
            # The op-level region log did not witness the checkpoint's
            # edits; a whole-document touch per site at the recovered
            # frontier makes this site vote No on any flatten whose
            # initiator snapshot predates what it just restored (the
            # same conservatism as adopting a state transfer), and the
            # opaque frontier keeps it from serving deltas spanning
            # history it only knows as a snapshot.
            for site, sequence in self.broadcast.clock.items():
                self._region_log.append(((), site, sequence, "*"))
            self._opaque_frontier = self._opaque_frontier.merge(
                self.broadcast.clock
            )
        finally:
            self._recovering = False
        for payload in own_payloads:
            self.network.broadcast(self.site, payload)
            self.reshipped_envelopes += 1

    def _restore_counters(self, meta: Dict[str, object],
                          own_events: List[object], udis_type: type) -> None:
        """Monotonic mint counters survive the crash: the META values
        cover everything up to the checkpoint; the replayed own-origin
        tail advances past them (batches carry their absolute seq
        range; bare operations each claimed one number)."""
        op_seq = int(meta.get("op_seq", 0) or 0)
        self.doc.restore_dis_counter(int(meta.get("dis_counter", 0) or 0))
        for event in own_events:
            if isinstance(event, OpBatch):
                op_seq = max(op_seq, event.seq_end)
                ops = event.ops
            else:
                op_seq += 1
                ops = (event,)
            for op in ops:
                posid = op.posid if hasattr(op, "posid") else op.path
                for element in posid.elements:
                    dis = element.dis
                    if isinstance(dis, udis_type) and dis.site == self.site:
                        self.doc.restore_dis_counter(dis.counter + 1)
        self.doc.restore_op_seq(op_seq)

    def crash(self) -> Optional["DurableStore"]:
        """Simulate process death: detach from the network with no
        graceful shutdown whatsoever — nothing flushes, nothing
        checkpoints (appends were already fsynced individually). The
        abandoned object must not be used again; resurrect the site by
        constructing a fresh one over the returned store."""
        self.network.disconnect(self.site)
        return self.store

    # -- state-transfer anti-entropy ------------------------------------------------

    def make_state_transfer(self) -> SyncResponse:
        """Snapshot this site's document, causal frontier and
        outstanding delete log for a lagging peer (the sender half of
        the anti-entropy exchange)."""
        return SyncResponse(
            self.site,
            self.broadcast.clock.copy(),
            self.doc.capture_state(),
            tuple(self._delete_log) if self.tombstone_gc else (),
        )

    def sync_from(self, peer: "ReplicaSite") -> "SyncStats":
        """Catch up to ``peer`` by state transfer instead of replay.

        A convenience for tests and tools that routes through the
        *same wire path* as the networked exchange: the peer's response
        frame is encoded to bytes and decoded back before application,
        so the byte accounting is the measured frame length and any
        encode/decode defect surfaces here too. In a live simulation
        prefer :meth:`request_sync` — the request/response then crosses
        the simulated network with its losses and corruption.
        """
        frame = decode_wire(peer.make_state_transfer().to_wire())
        return self.apply_state_transfer(frame)

    def apply_state_transfer(self, transfer: SyncResponse) -> "SyncStats":
        """Adopt a peer's state snapshot (the receiver half).

        Verifies the causal-domination precondition, replaces the
        document, adopts the frontier (buffered envelopes covered by
        the snapshot are dropped as duplicates, newer ones re-drain),
        and conservatively poisons future flatten votes for snapshots
        older than the adopted frontier. The sender's delete log rides
        along, so inherited SDIS tombstones purge as soon as causal
        stability reaches them — no flatten required.
        """
        from repro.replication.sync import SyncStats

        if transfer.site == self.site:
            raise SyncError(f"site {self.site}: cannot sync from itself")
        if not transfer.clock.dominates(self.broadcast.clock):
            lagging = ", ".join(
                f"origin {origin}: offered {transfer.clock.get(origin)}"
                f" < local {count}"
                for origin, count in sorted(self.broadcast.clock.items())
                if transfer.clock.get(origin) < count
            )
            raise StaleStateError(
                f"site {self.site}: snapshot from {transfer.site} does not "
                f"dominate this replica ({lagging}) — catch up by replay, "
                "or sync from a peer that is strictly ahead"
            )
        atoms = self.doc.load_state(transfer.state)
        self.broadcast.catch_up(transfer.clock)
        inherited = 0
        if self.tombstone_gc:
            # The snapshot replaced the document, so the sender's
            # outstanding delete log replaces ours: it names exactly
            # the tombstones the new document still holds.
            self._delete_log = [
                (posid, origin, sequence)
                for posid, origin, sequence in transfer.delete_log
            ]
            inherited = len(self._delete_log)
            if self._stability is not None:
                from repro.replication.stability import (
                    purge_stable_tombstones,
                )

                self.purged_tombstones += purge_stable_tombstones(
                    self.doc, self._delete_log,
                    self._stability.stable_frontier(),
                )
        # The op-level region log did not see the snapshot's edits; log
        # a whole-document touch per site at the adopted frontier so
        # this site votes No on any flatten whose initiator snapshot
        # predates the state it just inherited. The opaque frontier
        # rises with it: history learned as a snapshot cannot be
        # frontier-diffed onward.
        for site, sequence in transfer.clock.items():
            self._region_log.append(((), site, sequence, "*"))
        self._opaque_frontier = self._opaque_frontier.merge(transfer.clock)
        self._peer_failures.pop(transfer.site, None)
        if self.store is not None and not self._recovering:
            # Adopting a snapshot rewrites the document wholesale; no
            # WAL record describes that, so persist it as an immediate
            # checkpoint (a crash before this completes simply loses
            # the adoption — the policy will re-sync).
            self.checkpoint()
        return SyncStats(
            atoms=atoms,
            wire_bytes=transfer.wire_bytes,
            run_segments=transfer.state.run_segments,
            op_segments=transfer.state.op_segments,
            loaded_leaves=self.doc.array_leaf_count,
            inherited_deletes=inherited,
            stale_responses=self.sync_responses_stale,
        )

    def request_sync(self, peer: Optional[SiteId] = None) -> bool:
        """Send a ``SyncRequest``; returns False when no candidate peer
        exists. The response arrives over the network; run the
        simulation to receive it.

        Default peer selection rotates rather than fixates: a
        responder hint (from a ``SyncDecline``) first, then a
        *reachable* origin of a buffered envelope — each is provably
        ahead of this site — skipping peers still in backoff, chosen by
        the seeded jitter stream so a hundred laggards spread their
        requests instead of pelting one responder. When every buffered
        origin is unreachable (crashed, or across a partition), any
        reachable peer serves as fallback: it may well have applied the
        missing events. An explicit ``peer`` bypasses all filters.
        """
        now = self.network.now
        if peer is None:
            peer = self._pick_sync_peer(now)
            if peer is None:
                return False
        request = SyncRequest(self.site, self.broadcast.clock.copy())
        self.network.send(self.site, peer, encode_wire(request))
        self._last_sync_request = now
        self._next_request_at = now + self._jittered(
            self.policy.min_request_interval
        )
        self.sync_requests_sent += 1
        return True

    def _pick_sync_peer(self, now: float) -> Optional[SiteId]:
        """Rotation: hint > reachable buffered origin > any reachable
        peer; backoff filters each tier; None with no gap at all."""
        candidates: List[SiteId] = []
        for origin in self.broadcast.buffered_origins():
            if origin not in candidates and origin != self.site:
                candidates.append(origin)
        if not candidates:
            return None  # no causal gap: nothing to ask anyone for
        hint = self._peer_hint
        if (hint is not None and hint != self.site
                and self.network.reachable(self.site, hint)
                and self._retry_ok(hint, now)):
            self._peer_hint = None
            return hint
        pool = [p for p in candidates
                if self.network.reachable(self.site, p)
                and self._retry_ok(p, now)]
        if not pool:
            # Every provably-ahead origin is dark: fall back to any
            # reachable peer not in backoff (it may have the history).
            pool = [p for p in self.network.sites
                    if p != self.site and p not in candidates
                    and self.network.reachable(self.site, p)
                    and self._retry_ok(p, now)]
        if not pool:
            # Last resort — ignore backoff rather than stay wedged: a
            # gap-blocked site's only way forward is through a peer.
            pool = [p for p in self.network.sites
                    if p != self.site
                    and self.network.reachable(self.site, p)]
        if not pool:
            return None
        if len(pool) == 1:
            return pool[0]
        return pool[self._sync_rng.randrange(len(pool))]

    def _retry_ok(self, peer: SiteId, now: float) -> bool:
        return now >= self._peer_retry_at.get(peer, float("-inf"))

    def _jittered(self, interval: float) -> float:
        """Stretch an interval by the policy's seeded jitter draw
        (the shared :func:`repro.util.backoff.jittered` rule)."""
        return jittered(interval, self.policy.jitter, self._sync_rng)

    def maybe_request_sync(self) -> bool:
        """Apply the anti-entropy policy: request a snapshot when the
        oldest causal gap has persisted too long (or parked too many
        envelopes), with jittered back-off between requests. Returns
        whether a request went out. Driven by
        :meth:`repro.replication.cluster.Cluster.anti_entropy`.
        """
        blocked_since = self.broadcast.blocked_since
        if blocked_since is None:
            return False
        now = self.network.now
        stretch = (self.policy.jitter * self._sync_rng.random()
                   if self.policy.jitter > 0.0 else 0.0)
        if not self.policy.should_request(
            self.broadcast.buffered, now - blocked_since, stretch
        ):
            return False
        if now < self._next_request_at:
            return False
        return self.request_sync()

    def make_sync_delta(self, base: VectorClock) -> Optional[SyncDelta]:
        """Build the frontier-diff answer for a requester at ``base``,
        or None when this site cannot diff soundly.

        Soundness demands per-operation knowledge of every event past
        ``base``: the requester must already be past this site's opaque
        frontier (snapshots, deltas, flattens, recovery leave no region
        trail) *and* past its delete floor (a pruned delete record
        could otherwise resurrect through a shipped region). Within
        that, the harvest is exact — regions touched after ``base``
        (from the region log) plus retained delete records after
        ``base``.
        """
        floors = self._opaque_frontier.merge(self._delete_floor)
        if not base.dominates(floors):
            return None
        regions: List[Tuple[int, ...]] = []
        for bits, origin, sequence, kind in self._region_log:
            if sequence <= base.get(origin):
                continue
            if kind in ("f", "*"):
                return None  # opaque event in the window (floor race)
            regions.append(bits)
        from repro.core.runs import RegionFilter, iter_state_segments

        segments = iter_state_segments(
            self.doc.tree, self.site, regions=RegionFilter(regions)
        )
        delete_log = tuple(
            (posid, origin, sequence)
            for posid, (origin, sequence) in self._recent_deletes.items()
            if sequence > base.get(origin)
        )
        return SyncDelta(self.site, self.broadcast.clock.copy(),
                         base.copy(), tuple(segments), delete_log)

    def _answer_sync_request(self, request: SyncRequest) -> None:
        """The anti-entropy responder: frontier-diff when sound, full
        snapshot when strictly ahead, graceful decline otherwise.

        The requester's clock is itself an acknowledgement (it has
        applied everything in it), so it feeds the stability tracker —
        the piggyback that keeps tombstone GC advancing without
        dedicated ack traffic.
        """
        self.sync_requests_received += 1
        self._record_ack(request.requester, request.clock)
        if not self.network.reachable(self.site, request.requester):
            # The requester crashed, left, or fell behind a partition
            # while its request was in flight: nobody to answer. (It
            # will rotate to another peer if it comes back wanting.)
            return
        clock = self.broadcast.clock
        if request.clock.dominates(clock):
            # Includes equality: nothing to offer. Point at the origin
            # of our own oldest buffered envelope if we have one — a
            # site ahead of both of us.
            self._send_decline(request.requester, DECLINE_NOT_AHEAD)
            return
        strictly = clock.dominates(request.clock)
        if not strictly and self.broadcast.blocked_since is not None:
            # Concurrent with the requester and fighting our own gap:
            # serving a sound diff is unlikely; route the requester on.
            self._send_decline(request.requester, DECLINE_BUSY)
            return
        if strictly and not any(True for _ in request.clock.items()):
            # A fresh joiner has no frontier to diff from: bootstrap it
            # with the full snapshot (collapsed runs load straight into
            # array leaves — the cheap path) rather than a whole-
            # document "diff" merged slot by slot.
            self.network.send(
                self.site, request.requester,
                self.make_state_transfer().to_wire()
            )
            self.sync_responses_sent += 1
            return
        delta = self.make_sync_delta(request.clock)
        if delta is not None:
            if strictly:
                full = self.make_state_transfer()
                if delta.wire_bytes >= full.wire_bytes:
                    # The diff lost to the whole document (huge window,
                    # tiny doc): ship the cheaper full snapshot.
                    self.network.send(self.site, request.requester,
                                      full.to_wire())
                    self.sync_responses_sent += 1
                    return
            self.network.send(self.site, request.requester, delta.to_wire())
            self.sync_deltas_sent += 1
            return
        if strictly:
            self.network.send(
                self.site, request.requester,
                self.make_state_transfer().to_wire()
            )
            self.sync_responses_sent += 1
            return
        # Concurrent frontiers and no sound diff: decline with a hint.
        self._send_decline(request.requester, DECLINE_NOT_AHEAD)

    def _send_decline(self, requester: SiteId, reason: int) -> None:
        hint: Optional[SiteId] = None
        for origin in self.broadcast.buffered_origins():
            if origin != requester and origin != self.site:
                hint = origin
                break
        if hint is not None and reason == DECLINE_NOT_AHEAD:
            reason = DECLINE_TRY_PEER
        self.network.send(
            self.site, requester,
            encode_wire(SyncDecline(self.site, reason, hint))
        )
        self.sync_declines_sent += 1

    def _apply_sync_response(self, response: SyncResponse) -> None:
        """Adopt a snapshot that arrived over the network, unless this
        site advanced past it while the response was in flight."""
        self._record_ack(response.site, response.clock)
        try:
            self.apply_state_transfer(response)
        except StaleStateError:
            # Replay caught us up, or we edited since the request. Not
            # silent anymore: count it, score the peer, and reopen the
            # request window so the policy re-triggers at once instead
            # of waiting out a full gap-age window again.
            self.sync_responses_stale += 1
            self.sync_responses_ignored += 1
            self._note_sync_failure(response.site)
        except SyncError:
            self.sync_responses_ignored += 1
        else:
            self.sync_responses_applied += 1

    def _apply_sync_delta(self, delta: SyncDelta) -> None:
        """Merge a frontier-diff that arrived over the network.

        Safety is per-origin coverage, not whole-frontier domination:
        the sender's clock must be past *our* opaque frontier and
        delete floor (else an event we know only opaquely, or a delete
        we no longer remember, could collide with the merge) — but
        concurrent local progress the sender never saw survives,
        because merging is a join, not a replacement.
        """
        self._record_ack(delta.site, delta.clock)
        floors = self._opaque_frontier.merge(self._delete_floor)
        if not delta.clock.dominates(floors):
            self.sync_deltas_stale += 1
            self._note_sync_failure(delta.site)
            return
        pre = self.broadcast.clock.copy()
        if delta.clock.dominates(pre) and pre.dominates(delta.clock):
            return  # equal frontiers: raced duplicate, nothing to do
        # Identifiers we deleted but the sender may not have seen: the
        # merge must not resurrect them.
        skip = frozenset(self._recent_deletes)
        self.doc.merge_segments(delta.segments, skip=skip)
        inherited = 0
        for posid, origin, sequence in delta.delete_log:
            if self.broadcast.has_delivered(origin, sequence):
                continue  # already applied this delete
            op = DeleteOp(posid, origin)
            self.doc.apply(op)
            self._log_op(op, origin, sequence)
            if self.tombstone_gc:
                self._delete_log.append((posid, origin, sequence))
            inherited += 1
        self.broadcast.catch_up(delta.clock)
        # Events learned through the diff have no per-op trail here:
        # whole-document touches for flatten votes, opaque frontier for
        # onward delta service (the standard adoption conservatism).
        for site, sequence in delta.clock.items():
            if sequence > pre.get(site):
                self._region_log.append(((), site, sequence, "*"))
        self._opaque_frontier = self._opaque_frontier.merge(delta.clock)
        self._peer_failures.pop(delta.site, None)
        self.sync_deltas_applied += 1
        if self.store is not None and not self._recovering:
            # Same rule as adopting a snapshot: no WAL record describes
            # the merge, so persist it as an immediate checkpoint.
            self.checkpoint()

    def _apply_sync_decline(self, frame: SyncDecline) -> None:
        """A responder refused: back it off, remember its hint, and
        reopen the request window so rotation happens now."""
        self.sync_declines_received += 1
        self._note_sync_failure(frame.site)
        if frame.hint is not None and frame.hint != self.site:
            self._peer_hint = frame.hint

    def _note_sync_failure(self, peer: SiteId) -> None:
        failures = self._peer_failures.get(peer, 0) + 1
        self._peer_failures[peer] = failures
        self._peer_retry_at[peer] = self.network.now + self._jittered(
            self.policy.backoff(failures)
        )
        self._next_request_at = self.network.now

    # -- flatten / commitment -------------------------------------------------------

    def initiate_flatten(self, path: PosID) -> FlattenCoordinator:
        """Start the commitment protocol to flatten the subtree at
        ``path``. Returns the coordinator; its ``decision`` settles once
        the network delivers the votes (run the network to quiescence).
        """
        bits = path.bits()
        if self._locks.is_locked(bits):
            raise CommitError(
                f"site {self.site}: region {path!r} already has a pending flatten"
            )
        txn = f"{self.site}.{next(self._txn_counter)}"
        snapshot = self.broadcast.clock.copy()
        participants = {s for s in self.network.sites if s != self.site}
        coordinator = FlattenCoordinator(
            txn,
            path,
            participants,
            on_commit=lambda: self._commit_flatten(txn, path),
            on_abort=lambda: self._abort_flatten(txn),
        )
        self._coordinators[txn] = coordinator
        self._locks.lock(txn, path)
        if not participants:
            coordinator.decide_alone()
            return coordinator
        prepare = encode_wire(PrepareMsg(txn, path, snapshot, self.site))
        for participant in participants:
            self.network.send(self.site, participant, prepare)
        return coordinator

    def _commit_flatten(self, txn: str, path: PosID) -> None:
        op = self.doc.make_flatten(path)
        op = FlattenOp(op.path, op.digest, op.origin, txn=txn)
        self.doc.apply_flatten(op)
        self._locks.unlock(txn)
        frame = self.broadcast.broadcast(op)
        self._log_op(op, op.origin, frame.sequence)
        self.applied_ops.append(op)

    def _abort_flatten(self, txn: str) -> None:
        self._locks.unlock(txn)
        abort = encode_wire(AbortMsg(txn))
        for participant in self.network.sites:
            if participant != self.site:
                self.network.send(self.site, participant, abort)

    _DECIDED_TXN_KEEP = 256

    def _note_txn_decided(self, txn: str) -> None:
        """Remember a settled transaction so a reordered or duplicated
        ``PrepareMsg`` arriving after its outcome cannot take a lock
        that nothing will ever release."""
        self._decided_txns[txn] = None
        self._decided_txns.move_to_end(txn)
        while len(self._decided_txns) > self._DECIDED_TXN_KEEP:
            self._decided_txns.popitem(last=False)

    def _vote(self, prepare: PrepareMsg) -> bool:
        """Section 4.2.1: vote No when this site has executed an insert,
        delete or flatten within the subtree that the initiator's
        snapshot does not cover — or when it is not yet caught up with
        the snapshot (its region contents could then differ)."""
        if not self.broadcast.clock.dominates(prepare.snapshot):
            return False
        region = prepare.path.bits()
        if self._locks.overlapping(region) is not None:
            return False
        for bits, origin, sequence, _kind in self._region_log:
            shorter = min(len(bits), len(region))
            if bits[:shorter] != region[:shorter]:
                continue
            if sequence > prepare.snapshot.get(origin):
                return False
        return True

    # -- message handling ------------------------------------------------------------

    def _on_message(self, src: SiteId, data: bytes) -> None:
        """The single network entry point: decode the wire frame, then
        dispatch. A :class:`repro.errors.DecodeError` (bit flip in
        transit) propagates to the network, which counts it as loss
        and retransmits."""
        if not isinstance(data, (bytes, bytearray)):
            raise ReplicationError(
                f"site {self.site}: non-bytes delivery {data!r} — the "
                "network carries wire frames only"
            )
        self._on_frame(src, decode_wire(data))
        # Quiescent point: the delivery (and everything it cascaded
        # into) is fully applied and journaled — safe to checkpoint.
        self._maybe_checkpoint()

    def _on_frame(self, src: SiteId, frame: WireFrame) -> None:
        if isinstance(frame, EnvelopeFrame):
            self.broadcast.on_frame(frame)
            # Piggybacked ack: the envelope's clock *is* the origin's
            # acknowledgement (it has applied everything in it), so the
            # stable frontier advances under steady traffic with no
            # dedicated ack frames at all.
            self._record_ack(frame.origin, frame.clock)
        elif isinstance(frame, AckFrame):
            self._record_ack(frame.site, frame.applied)
        elif isinstance(frame, SyncRequest):
            self._answer_sync_request(frame)
        elif isinstance(frame, SyncResponse):
            self._apply_sync_response(frame)
        elif isinstance(frame, SyncDelta):
            self._apply_sync_delta(frame)
        elif isinstance(frame, SyncDecline):
            self._apply_sync_decline(frame)
        elif isinstance(frame, PrepareMsg):
            if frame.txn in self._decided_txns:
                # The outcome overtook this prepare (reordered abort) or
                # the prepare is a duplicate of a settled transaction:
                # vote No without locking — a lock taken now would never
                # be released, the outcome has already come and gone.
                yes = False
            else:
                yes = self._vote(frame)
                if yes:
                    self._locks.lock(frame.txn, frame.path)
            self.network.send(
                self.site, frame.initiator,
                encode_wire(VoteMsg(frame.txn, self.site, yes)),
            )
        elif isinstance(frame, VoteMsg):
            coordinator = self._coordinators.get(frame.txn)
            if coordinator is None:
                raise CommitError(f"vote for unknown transaction {frame.txn}")
            coordinator.on_vote(frame)
        elif isinstance(frame, AbortMsg):
            self._locks.unlock(frame.txn)
            self._note_txn_decided(frame.txn)
        else:  # pragma: no cover - decode_wire yields only the above
            raise ReplicationError(f"unhandled wire frame {frame!r}")

    def _on_causal_deliver(self, origin: SiteId, payload: object) -> None:
        if isinstance(payload, OpBatch):
            self.doc.apply_batch(payload)
            sequence = self.broadcast.clock.get(origin)
            for op in payload.ops:
                self._log_op(op, origin, sequence)
                if isinstance(op, DeleteOp) and self.tombstone_gc:
                    self._delete_log.append((op.posid, origin, sequence))
                if isinstance(op, FlattenOp) and op.txn is not None:
                    # Same as the bare-operation path below: a committed
                    # flatten is the outcome message, release the vote
                    # lock (no current producer batches flattens, but
                    # apply_batch supports them).
                    self._locks.unlock(op.txn)
                    self._note_txn_decided(op.txn)
            self.applied_ops.extend(payload.ops)
            return
        if not isinstance(payload, (InsertOp, DeleteOp, FlattenOp)):
            raise ReplicationError(f"unexpected causal payload {payload!r}")
        self.doc.apply(payload)
        sequence = self.broadcast.clock.get(origin)
        self._log_op(payload, origin, sequence)
        self.applied_ops.append(payload)
        if isinstance(payload, DeleteOp) and self.tombstone_gc:
            self._delete_log.append((payload.posid, origin, sequence))
        if isinstance(payload, FlattenOp) and payload.txn is not None:
            # The committed flatten is the outcome message: release the
            # vote lock.
            self._locks.unlock(payload.txn)
            self._note_txn_decided(payload.txn)

    # -- SDIS tombstone garbage collection (section 4.2) --------------------------

    def broadcast_ack(self) -> None:
        """Gossip this site's applied clock (drives the stable frontier).

        Call periodically (the cluster harness does) when
        ``tombstone_gc`` is enabled. Acks are idempotent,
        order-insensitive clock merges, so they travel as plain wire
        frames — no causal ordering, no clock tick.
        """
        if not self.tombstone_gc:
            return
        applied = self.broadcast.clock.copy()
        self._record_ack(self.site, applied)
        self.network.broadcast(
            self.site, encode_wire(AckFrame(self.site, applied))
        )

    def _record_ack(self, site: SiteId, applied: VectorClock) -> None:
        """Fold an acknowledgement — explicit or piggybacked — into the
        stability tracker, and purge whatever just became stable.

        Membership follows the network roster (churn admits members
        conservatively: an unheard-from joiner pins the frontier until
        it speaks); the site's own applied clock counts as an ack too,
        so its progress never holds its own frontier back. Purging is
        skipped when neither the frontier nor the delete log moved —
        the piggyback path runs on every delivery, and must cost a
        clock merge, not a log sweep."""
        from repro.replication.stability import (
            StabilityTracker,
            purge_stable_tombstones,
        )

        if not self.tombstone_gc:
            return
        if self._stability is None:
            self._stability = StabilityTracker(tuple(self.network.sites))
        tracker = self._stability
        tracker.ensure_member(self.site)
        for member in self.network.sites:
            tracker.ensure_member(member)
        tracker.record_ack(site, applied)
        tracker.record_ack(self.site, self.broadcast.clock)
        frontier = tracker.stable_frontier()
        memo = (frontier, len(self._delete_log))
        if memo == self._purge_memo:
            return
        self.purged_tombstones += purge_stable_tombstones(
            self.doc, self._delete_log, frontier
        )
        self._purge_memo = (frontier, len(self._delete_log))

    def forget_peer(self, site: SiteId) -> None:
        """A peer departed permanently (graceful leave): stop letting
        its last ack pin the stable frontier. The caller owns the
        protocol burden that the departure is known cluster-wide."""
        if self._stability is not None:
            self._stability.forget_member(site)
            self._purge_memo = None
        self._peer_failures.pop(site, None)
        self._peer_retry_at.pop(site, None)
        if self._peer_hint == site:
            self._peer_hint = None

    #: Retained recent-delete records; above this the oldest entries
    #: drop and the delete floor rises (delta service then demands the
    #: requester have seen them already).
    _DELETE_KEEP = 4096

    def _log_op(self, op: Operation, origin: SiteId, sequence: int) -> None:
        if isinstance(op, InsertOp):
            self._region_log.append((op.posid.bits(), origin, sequence, "i"))
        elif isinstance(op, DeleteOp):
            self._region_log.append((op.posid.bits(), origin, sequence, "d"))
            self._note_delete(op.posid, origin, sequence)
        else:
            # A flatten rewrites the subtree's identifier structure:
            # region state before and after do not merge, so the event
            # is opaque to frontier-diffing.
            self._region_log.append((op.path.bits(), origin, sequence, "f"))
            self._opaque_frontier = self._opaque_frontier.merge(
                VectorClock({origin: sequence})
            )

    def _note_delete(self, posid: PosID, origin: SiteId,
                     sequence: int) -> None:
        self._recent_deletes[posid] = (origin, sequence)
        while len(self._recent_deletes) > self._DELETE_KEEP:
            oldest = next(iter(self._recent_deletes))
            old_origin, old_sequence = self._recent_deletes.pop(oldest)
            self._delete_floor = self._delete_floor.merge(
                VectorClock({old_origin: old_sequence})
            )

    # -- queries ---------------------------------------------------------------------

    def text(self, separator: str = "") -> str:
        return self.doc.text(separator)

    def atoms(self) -> List[object]:
        return self.doc.atoms()

    def __len__(self) -> int:
        return len(self.doc)

    @property
    def locked_regions(self) -> int:
        return len(self._locks)

    def __repr__(self) -> str:
        return f"<ReplicaSite {self.site} atoms={len(self.doc)}>"
