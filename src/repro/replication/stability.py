"""Causal-stability tracking: SDIS tombstone garbage collection.

Section 4.2: "Deleted nodes can be garbage-collected even when using
site identifiers as soon as it is clear that every site has already
deleted the atom and no operation referring to it will be issued."

The standard mechanism is causal stability: each site gossips the
vector clock of operations it has *applied*; the pointwise minimum over
all sites is the *stable frontier* — every operation at or below it has
been applied everywhere, so no future operation can causally depend on
anything only reachable through a tombstone older than the frontier.
A tombstone created by delete ``d`` can be purged once ``d`` is stable
**and** the insert it shadows is stable (always implied), because:

- no site will issue a concurrent insert adjacent to the tombstone's
  identifier anymore without having seen the delete, and
- our allocator never re-mints a discarded identifier for *fresh*
  inserts at other sites only if the identifier cannot come back — which
  is guaranteed for *leaf* tombstones whose position node can be
  discarded entirely (mirroring the UDIS discard rule); interior
  tombstones are kept as empty structure, exactly like UDIS interiors.

``StabilityTracker`` maintains the frontier; ``purge_stable_tombstones``
applies it to a Treedoc replica. The replica site wires both together;
acknowledgement clocks travel as plain
:class:`repro.replication.wire.AckFrame` wire frames (merges are
idempotent and order-insensitive, so acks need no causal ordering).
A replica that adopted a state snapshot inherits the sender's
outstanding delete log with it, so inherited tombstones purge here
too once the frontier reaches them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.disambiguator import SiteId
from repro.core.node import TOMBSTONE
from repro.core.treedoc import Treedoc
from repro.replication.clock import VectorClock


class StabilityTracker:
    """Computes the stable frontier from per-site acknowledgements."""

    def __init__(self, members: Tuple[SiteId, ...]) -> None:
        self.members = tuple(members)
        self._acks: Dict[SiteId, VectorClock] = {
            site: VectorClock() for site in self.members
        }

    def record_ack(self, site: SiteId, applied: VectorClock) -> None:
        """Merge a (possibly stale, reordered) acknowledgement."""
        if site not in self._acks:
            self._acks[site] = VectorClock()
        self._acks[site] = self._acks[site].merge(applied)

    def stable_frontier(self) -> VectorClock:
        """Pointwise minimum of every member's applied clock."""
        if not self.members:
            return VectorClock()
        counts: Dict[SiteId, int] = {}
        first = self._acks[self.members[0]]
        candidates = {site for site, _ in first.items()}
        for member in self.members[1:]:
            candidates &= {site for site, _ in self._acks[member].items()}
        for origin in candidates:
            counts[origin] = min(
                self._acks[member].get(origin) for member in self.members
            )
        return VectorClock(counts)

    def is_stable(self, origin: SiteId, sequence: int) -> bool:
        """Has the ``sequence``-th op of ``origin`` been applied by all?"""
        return self.stable_frontier().get(origin) >= sequence


def purge_stable_tombstones(
    doc: Treedoc,
    delete_log: List[Tuple[object, SiteId, int]],
    frontier: VectorClock,
) -> int:
    """Discard tombstones whose delete is causally stable.

    ``delete_log`` holds ``(posid, delete_origin, delete_sequence)`` for
    applied deletes; purged entries are removed from it. Returns the
    number of tombstones discarded. Purging mirrors the UDIS discard:
    the slot empties, and leaf structure is pruned.
    """
    purged = 0
    remaining: List[Tuple[object, SiteId, int]] = []
    for posid, origin, sequence in delete_log:
        if frontier.get(origin) < sequence:
            remaining.append((posid, origin, sequence))
            continue
        slot = doc.tree.lookup(posid)
        if slot is not None and slot.state == TOMBSTONE:
            doc.tree.purge_tombstone(slot)
            purged += 1
    delete_log[:] = remaining
    return purged
