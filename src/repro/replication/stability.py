"""Causal-stability tracking: SDIS tombstone garbage collection.

Section 4.2: "Deleted nodes can be garbage-collected even when using
site identifiers as soon as it is clear that every site has already
deleted the atom and no operation referring to it will be issued."

The standard mechanism is causal stability: each site gossips the
vector clock of operations it has *applied*; the pointwise minimum over
all sites is the *stable frontier* — every operation at or below it has
been applied everywhere, so no future operation can causally depend on
anything only reachable through a tombstone older than the frontier.
A tombstone created by delete ``d`` can be purged once ``d`` is stable
**and** the insert it shadows is stable (always implied), because:

- no site will issue a concurrent insert adjacent to the tombstone's
  identifier anymore without having seen the delete, and
- our allocator never re-mints a discarded identifier for *fresh*
  inserts at other sites only if the identifier cannot come back — which
  is guaranteed for *leaf* tombstones whose position node can be
  discarded entirely (mirroring the UDIS discard rule); interior
  tombstones are kept as empty structure, exactly like UDIS interiors.

``StabilityTracker`` maintains the frontier; ``purge_stable_tombstones``
applies it to a Treedoc replica. The replica site wires both together;
acknowledgement clocks travel as plain
:class:`repro.replication.wire.AckFrame` wire frames (merges are
idempotent and order-insensitive, so acks need no causal ordering).
A replica that adopted a state snapshot inherits the sender's
outstanding delete log with it, so inherited tombstones purge here
too once the frontier reaches them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.disambiguator import SiteId
from repro.core.node import TOMBSTONE
from repro.core.treedoc import Treedoc
from repro.replication.clock import VectorClock


class StabilityTracker:
    """Computes the stable frontier from per-site acknowledgements.

    Membership is dynamic (clusters churn): :meth:`ensure_member` adds
    a newly observed site — conservatively, since a member that has
    never acked pins the frontier at zero until it speaks. The frontier
    is cached and recomputed only after an ack actually changed
    something, so piggybacked acks (every envelope's clock is one) cost
    one clock merge on the hot path, not an O(members × origins)
    minimum per message.
    """

    def __init__(self, members: Tuple[SiteId, ...] = ()) -> None:
        self._acks: Dict[SiteId, VectorClock] = {
            site: VectorClock() for site in members
        }
        self._frontier: VectorClock = VectorClock()
        self._dirty = True

    @property
    def members(self) -> Tuple[SiteId, ...]:
        return tuple(sorted(self._acks))

    def ensure_member(self, site: SiteId) -> None:
        """Admit ``site`` to the membership (no-op when present)."""
        if site not in self._acks:
            self._acks[site] = VectorClock()
            self._dirty = True

    def forget_member(self, site: SiteId) -> None:
        """Drop a permanently departed member so its last ack stops
        pinning the frontier. Only safe once the departure is known to
        every surviving site (the caller's protocol burden)."""
        if self._acks.pop(site, None) is not None:
            self._dirty = True

    def record_ack(self, site: SiteId, applied: VectorClock) -> None:
        """Merge a (possibly stale, reordered) acknowledgement."""
        merged = self._acks.get(site, VectorClock()).merge(applied)
        if site not in self._acks or merged != self._acks[site]:
            self._acks[site] = merged
            self._dirty = True

    def stable_frontier(self) -> VectorClock:
        """Pointwise minimum of every member's applied clock (cached)."""
        if not self._dirty:
            return self._frontier
        self._dirty = False
        if not self._acks:
            self._frontier = VectorClock()
            return self._frontier
        members = list(self._acks)
        counts: Dict[SiteId, int] = {}
        candidates = {site for site, _ in self._acks[members[0]].items()}
        for member in members[1:]:
            candidates &= {site for site, _ in self._acks[member].items()}
        for origin in candidates:
            counts[origin] = min(
                self._acks[member].get(origin) for member in members
            )
        self._frontier = VectorClock(counts)
        return self._frontier

    def is_stable(self, origin: SiteId, sequence: int) -> bool:
        """Has the ``sequence``-th op of ``origin`` been applied by all?"""
        return self.stable_frontier().get(origin) >= sequence


def purge_stable_tombstones(
    doc: Treedoc,
    delete_log: List[Tuple[object, SiteId, int]],
    frontier: VectorClock,
) -> int:
    """Discard tombstones whose delete is causally stable.

    ``delete_log`` holds ``(posid, delete_origin, delete_sequence)`` for
    applied deletes; purged entries are removed from it. Returns the
    number of tombstones discarded. Purging mirrors the UDIS discard:
    the slot empties, and leaf structure is pruned.
    """
    purged = 0
    remaining: List[Tuple[object, SiteId, int]] = []
    for posid, origin, sequence in delete_log:
        if frontier.get(origin) < sequence:
            remaining.append((posid, origin, sequence))
            continue
        slot = doc.tree.lookup(posid)
        if slot is not None and slot.state == TOMBSTONE:
            doc.tree.purge_tombstone(slot)
            purged += 1
    delete_log[:] = remaining
    return purged
