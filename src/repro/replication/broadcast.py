"""Causal broadcast: happened-before delivery over the simulated network.

Treedoc only requires that operations replay in an order compatible with
happened-before (section 1). The classic vector-clock algorithm provides
it: each broadcast carries the sender's clock; a receiver delivers a
message once it has delivered everything the sender had, buffering it
otherwise. Duplicates (from the lossy transport's retransmissions) are
filtered by the per-origin sequence number embedded in the clock.

The channel speaks bytes: :meth:`CausalBroadcast.broadcast` encodes the
event — one :class:`repro.core.ops.OpBatch` (a whole typed string,
deleted range or replayed revision) or one bare operation — into an
:class:`repro.replication.wire.EnvelopeFrame` and puts only the encoded
frame on the network; delivery decodes the payload after the causal
test passes. The per-envelope vector-clock stamp, the encode and the
delivery test are all paid once per edit, not once per atom.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.core.disambiguator import SiteId
from repro.core.encoding import encode_batch, encode_operation
from repro.core.ops import OpBatch, Operation
from repro.errors import CausalityError
from repro.replication.clock import VectorClock
from repro.replication.network import SimulatedNetwork
from repro.replication.wire import EnvelopeFrame, decode_wire, encode_wire

#: Application callback on causal delivery: callback(origin, event),
#: where the event is the decoded OpBatch or bare operation.
DeliverFn = Callable[[SiteId, Union[Operation, OpBatch]], None]


class CausalBroadcast:
    """Per-site causal broadcast endpoint (bytes in, bytes out)."""

    def __init__(self, site: SiteId, network: SimulatedNetwork,
                 deliver: DeliverFn, register: bool = True) -> None:
        self.site = site
        self.network = network
        self._deliver = deliver
        self.clock = VectorClock()
        #: Durability hook: called with an envelope's wire bytes right
        #: before the envelope takes effect — before a local event is
        #: shipped, and before a remote one is delivered (log-before-
        #: apply). Owners with a :class:`repro.storage.DurableStore`
        #: install it; None means no journaling.
        self.journal: Optional[Callable[[bytes], None]] = None
        self._buffer: List[EnvelopeFrame] = []
        #: Simulated time at which the buffer last became non-empty
        #: (None while empty): the age of the oldest unmet causal gap,
        #: which the anti-entropy policy reads.
        self.blocked_since: Optional[float] = None
        if register:
            network.register(site, self.on_message)

    # -- sending ------------------------------------------------------------------

    def broadcast(self, event: Union[Operation, OpBatch]) -> EnvelopeFrame:
        """Stamp, encode and broadcast a locally generated event.

        The local event is delivered to the local application by the
        caller (it already applied the operation); this only ships it.
        Returns the envelope frame that went on the wire.
        """
        if isinstance(event, OpBatch):
            payload, bits = encode_batch(event)
        else:
            payload, bits = encode_operation(event)
        self.clock = self.clock.tick(self.site)
        frame = EnvelopeFrame(self.site, self.clock.copy(), payload, bits)
        data = encode_wire(frame)
        if self.journal is not None:
            # Log before ship: once the caller observes the edit as
            # sent, a crash must be able to replay (and re-ship) it.
            self.journal(data)
        self.network.broadcast(self.site, data)
        return frame

    # -- state-transfer catch-up ---------------------------------------------------

    def catch_up(self, clock: VectorClock) -> None:
        """Adopt a state snapshot's causal frontier.

        Every event the snapshot covers is already reflected in the
        loaded document state; the duplicate filter treats any sequence
        at or below the clock as delivered (see :meth:`has_delivered`),
        so adopting a frontier is O(clock entries) no matter how much
        history it covers. Buffered envelopes are then re-drained:
        messages that were stuck waiting on the gap this snapshot just
        filled become deliverable; ones the snapshot already contains
        drop as duplicates.
        """
        self.clock = self.clock.merge(clock)
        self._drain()

    # -- receiving -----------------------------------------------------------------

    def on_message(self, src: SiteId, data: bytes) -> None:
        """Network delivery entry point for a standalone endpoint: the
        raw wire bytes of one envelope frame. Raises
        :class:`repro.errors.DecodeError` on damaged bytes (the network
        retransmits) and :class:`CausalityError` on a frame that is not
        an envelope."""
        frame = decode_wire(data)
        if not isinstance(frame, EnvelopeFrame):
            raise CausalityError(f"unexpected wire frame {frame!r}")
        self.on_frame(frame)

    def on_frame(self, frame: EnvelopeFrame) -> None:
        """Accept one decoded envelope (owners that multiplex several
        frame kinds over one site handler call this directly)."""
        if self.has_delivered(frame.origin, frame.sequence):
            return  # duplicate from a retransmission (or a state sync)
        self._buffer.append(frame)
        if self.blocked_since is None:
            self.blocked_since = self.network.now
        self._drain()

    def _deliverable(self, frame: EnvelopeFrame) -> bool:
        """Standard causal-delivery test: next-in-sequence from its
        origin, and all its other dependencies already delivered."""
        if frame.sequence != self.clock.get(frame.origin) + 1:
            return False
        for site, count in frame.clock.items():
            if site == frame.origin:
                continue
            if self.clock.get(site) < count:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for frame in list(self._buffer):
                if self.has_delivered(frame.origin, frame.sequence):
                    self._buffer.remove(frame)
                    progressed = True
                    continue
                if self._deliverable(frame):
                    # Decode after the causal test (buffered frames stay
                    # bytes until applied) but BEFORE merging the clock:
                    # a payload that fails to decode must not be
                    # recorded as delivered, or no retransmission could
                    # ever recover it. The frame IS dequeued first, so
                    # a permanently undecodable one (sender defect)
                    # cannot wedge the buffer — the raised DecodeError
                    # reaches the transport, which retries the bytes;
                    # if they never decode, the gap persists and the
                    # anti-entropy policy recovers by state transfer.
                    self._buffer.remove(frame)
                    payload = frame.decode_payload()
                    if self.journal is not None:
                        # Log before apply: a frame journals only after
                        # it decodes (same reason the clock merges after
                        # the decode) and before it mutates anything, so
                        # an ack never precedes durability.
                        self.journal(encode_wire(frame))
                    self.clock = self.clock.merge(frame.clock)
                    self._deliver(frame.origin, payload)
                    progressed = True
        if not self._buffer:
            self.blocked_since = None

    # -- introspection --------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Messages waiting for their causal dependencies."""
        return len(self._buffer)

    def buffered_origins(self) -> List[SiteId]:
        """Origins of the buffered envelopes, oldest arrival first
        (candidate peers for an anti-entropy request: each is provably
        ahead of this site on some component)."""
        return [frame.origin for frame in self._buffer]

    def has_delivered(self, origin: SiteId, sequence: int) -> bool:
        """Whether the ``sequence``-th event of ``origin`` was delivered.

        Causal delivery is in-sequence per origin, and a delivery only
        ever advances the origin's own clock component by one (the
        other components were already satisfied), so the clock *is* the
        delivered set: no per-event bookkeeping, and adopting a whole
        state-snapshot frontier (:meth:`catch_up`) costs O(1) per site
        regardless of how much history it covers.
        """
        return sequence <= self.clock.get(origin)
