"""Causal broadcast: happened-before delivery over the simulated network.

Treedoc only requires that operations replay in an order compatible with
happened-before (section 1). The classic vector-clock algorithm provides
it: each broadcast carries the sender's clock; a receiver delivers a
message once it has delivered everything the sender had, buffering it
otherwise. Duplicates (from the lossy transport's retransmissions) are
filtered by the per-origin sequence number embedded in the clock.

Payloads are opaque; with the batch-first API one envelope carries one
:class:`repro.core.ops.OpBatch` (a whole typed string, deleted range or
replayed revision), so the per-envelope vector-clock stamp and delivery
test are paid once per edit, not once per atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.core.disambiguator import SiteId
from repro.errors import CausalityError
from repro.replication.clock import VectorClock
from repro.replication.network import SimulatedNetwork

#: Application callback on causal delivery: callback(origin, payload).
DeliverFn = Callable[[SiteId, object], None]


@dataclass(frozen=True)
class CausalEnvelope:
    """A broadcast payload stamped with its origin's vector clock.

    ``clock`` includes the message's own event: the message is the
    ``clock.get(origin)``-th event of ``origin``.
    """

    origin: SiteId
    clock: VectorClock
    payload: object

    @property
    def sequence(self) -> int:
        return self.clock.get(self.origin)


class CausalBroadcast:
    """Per-site causal broadcast endpoint."""

    def __init__(self, site: SiteId, network: SimulatedNetwork,
                 deliver: DeliverFn, register: bool = True) -> None:
        self.site = site
        self.network = network
        self._deliver = deliver
        self.clock = VectorClock()
        self._buffer: List[CausalEnvelope] = []
        if register:
            network.register(site, self.on_message)

    # -- sending ------------------------------------------------------------------

    def broadcast(self, payload: object) -> CausalEnvelope:
        """Stamp and broadcast a locally generated event.

        The local event is delivered to the local application by the
        caller (it already applied the operation); this only ships it.
        """
        self.clock = self.clock.tick(self.site)
        envelope = CausalEnvelope(self.site, self.clock.copy(), payload)
        self.network.broadcast(self.site, envelope)
        return envelope

    # -- state-transfer catch-up ---------------------------------------------------

    def catch_up(self, clock: VectorClock) -> None:
        """Adopt a state snapshot's causal frontier.

        Every event the snapshot covers is already reflected in the
        loaded document state; the duplicate filter treats any sequence
        at or below the clock as delivered (see :meth:`has_delivered`),
        so adopting a frontier is O(clock entries) no matter how much
        history it covers. Buffered envelopes are then re-drained:
        messages that were stuck waiting on the gap this snapshot just
        filled become deliverable; ones the snapshot already contains
        drop as duplicates.
        """
        self.clock = self.clock.merge(clock)
        self._drain()

    # -- receiving -----------------------------------------------------------------

    def on_message(self, src: SiteId, message: object) -> None:
        """Network delivery entry point (owners that multiplex several
        message kinds over one site handler call this directly)."""
        if not isinstance(message, CausalEnvelope):
            raise CausalityError(f"unexpected message {message!r}")
        if self.has_delivered(message.origin, message.sequence):
            return  # duplicate from a retransmission (or a state sync)
        self._buffer.append(message)
        self._drain()

    def _deliverable(self, envelope: CausalEnvelope) -> bool:
        """Standard causal-delivery test: next-in-sequence from its
        origin, and all its other dependencies already delivered."""
        if envelope.sequence != self.clock.get(envelope.origin) + 1:
            return False
        for site, count in envelope.clock.items():
            if site == envelope.origin:
                continue
            if self.clock.get(site) < count:
                return False
        return True

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for envelope in list(self._buffer):
                if self.has_delivered(envelope.origin, envelope.sequence):
                    self._buffer.remove(envelope)
                    progressed = True
                    continue
                if self._deliverable(envelope):
                    self._buffer.remove(envelope)
                    self.clock = self.clock.merge(envelope.clock)
                    self._deliver(envelope.origin, envelope.payload)
                    progressed = True

    # -- introspection --------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Messages waiting for their causal dependencies."""
        return len(self._buffer)

    def has_delivered(self, origin: SiteId, sequence: int) -> bool:
        """Whether the ``sequence``-th event of ``origin`` was delivered.

        Causal delivery is in-sequence per origin, and a delivery only
        ever advances the origin's own clock component by one (the
        other components were already satisfied), so the clock *is* the
        delivered set: no per-event bookkeeping, and adopting a whole
        state-snapshot frontier (:meth:`catch_up`) costs O(1) per site
        regardless of how much history it covers.
        """
        return sequence <= self.clock.get(origin)
