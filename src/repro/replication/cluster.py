"""Multi-site simulation harness.

``Cluster`` assembles N replica sites over one simulated network and
offers the operations the integration tests and examples need: drive
edits at any site, run the network to quiescence, tick the anti-entropy
policy, and check convergence (the CRDT property: same operations, any
causal order, same state). The network carries only wire-frame bytes,
so ``cluster.network.bytes_delivered`` / ``link_bytes`` are measured
traffic, not estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.disambiguator import SiteId
from repro.errors import ReplicationError
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.site import ReplicaSite
from repro.replication.sync import AntiEntropyPolicy


class Cluster:
    """N cooperating replica sites on a simulated network."""

    def __init__(
        self,
        n_sites: int,
        mode: str = "udis",
        balanced: bool = True,
        config: NetworkConfig | None = None,
        seed: int = 0,
        first_site: SiteId = 1,
        tombstone_gc: bool = False,
        policy: Optional[AntiEntropyPolicy] = None,
    ) -> None:
        if n_sites < 1:
            raise ReplicationError("a cluster needs at least one site")
        self.network = SimulatedNetwork(config, seed=seed)
        self.mode = mode
        self.balanced = balanced
        self.tombstone_gc = tombstone_gc
        self.policy = policy
        self.sites: Dict[SiteId, ReplicaSite] = {}
        for offset in range(n_sites):
            self.add_site(first_site + offset)

    def add_site(self, site_id: Optional[SiteId] = None,
                 store: Optional["DurableStore"] = None) -> ReplicaSite:
        """Register one more site (default id: max + 1) — a late
        joiner. It starts empty and catches up like any lagging
        replica: by replay for what still reaches it, and by the
        anti-entropy exchange (see :meth:`anti_entropy`) for the
        history sent before it existed.

        With ``store`` the site is durable — and if the store already
        holds history (e.g. from a site removed by :meth:`crash_site`),
        the new site *resurrects* from it: checkpoint + WAL tail
        replay, then the ordinary catch-up paths close whatever gap
        accumulated while it was down."""
        if site_id is None:
            site_id = max(self.sites) + 1 if self.sites else 1
        if site_id in self.sites:
            raise ReplicationError(f"site {site_id} already in the cluster")
        self.sites[site_id] = ReplicaSite(
            site_id, self.network, mode=self.mode, balanced=self.balanced,
            tombstone_gc=self.tombstone_gc, policy=self.policy, store=store,
        )
        return self.sites[site_id]

    def crash_site(self, site_id: SiteId) -> Optional["DurableStore"]:
        """Kill a site: it vanishes from the cluster mid-flight (no
        flush, no goodbye), exactly like a process death. Returns its
        durable store (None for a volatile site) for a later
        :meth:`add_site` resurrection."""
        site = self.sites.pop(site_id, None)
        if site is None:
            raise ReplicationError(f"site {site_id} not in the cluster")
        return site.crash()

    def __getitem__(self, site: SiteId) -> ReplicaSite:
        return self.sites[site]

    def __iter__(self):
        return iter(self.sites.values())

    def __len__(self) -> int:
        return len(self.sites)

    @property
    def site_ids(self) -> List[SiteId]:
        return sorted(self.sites)

    # -- simulation control ---------------------------------------------------------

    def settle(self, max_events: int = 1_000_000) -> int:
        """Run the network until no undelivered messages remain."""
        return self.network.run(max_events)

    def anti_entropy(self, max_rounds: int = 8,
                     max_events: int = 1_000_000) -> int:
        """Tick the anti-entropy policy until no site wants a snapshot.

        Each round settles the network, then lets every site consult
        its :class:`repro.replication.sync.AntiEntropyPolicy`; sites
        with a persistent causal gap send ``SyncRequest`` frames, the
        next settle carries the responses. Returns the number of
        requests issued. Sites that have heard nothing (no buffered
        envelopes) have no gap to detect — a joiner that must catch up
        from silence calls ``site.request_sync(peer)`` explicitly.
        """
        requests = 0
        for _ in range(max_rounds):
            self.settle(max_events)
            fired = sum(
                1 for site in self.sites.values() if site.maybe_request_sync()
            )
            if not fired:
                break
            requests += fired
        self.settle(max_events)
        return requests

    def partition(self, *groups) -> None:
        """Partition the network (see :meth:`SimulatedNetwork.partition`)."""
        self.network.partition(*groups)

    def heal(self) -> None:
        """Heal the partition and release held messages."""
        self.network.heal()

    # -- convergence -----------------------------------------------------------------

    def is_converged(self) -> bool:
        """All sites expose the same visible atom sequence."""
        contents = [site.atoms() for site in self.sites.values()]
        return all(c == contents[0] for c in contents[1:])

    def assert_converged(self) -> List[object]:
        """Check convergence and shared-state integrity; returns the
        common atom sequence.

        Requires true quiescence: no messages pending in the queue
        *and* none held behind a partition — a partitioned cluster has
        traffic its isolated sites have not seen, so agreement among
        them would be vacuous, not convergence. Heal and settle first.
        """
        if self.network.pending:
            raise ReplicationError(
                f"{self.network.pending} messages still pending; "
                "call settle() before checking convergence"
            )
        if self.network.held:
            raise ReplicationError(
                f"{self.network.held} messages held behind a partition; "
                "heal() and settle() before checking convergence"
            )
        reference: Optional[List[object]] = None
        for site in self.sites.values():
            atoms = site.atoms()
            site.doc.check()
            if reference is None:
                reference = atoms
            elif atoms != reference:
                raise ReplicationError(
                    f"site {site.site} diverged: {atoms!r} != {reference!r}"
                )
        return reference or []

    # -- convenience editing -----------------------------------------------------------

    def bootstrap(self, atoms: Sequence[object],
                  site: Optional[SiteId] = None) -> None:
        """Create initial content at one site and replicate it."""
        origin = self.sites[site if site is not None else self.site_ids[0]]
        origin.insert_run(0, list(atoms))
        self.settle()

    def gossip_acks(self) -> None:
        """Every site gossips its applied clock and the network settles;
        with ``tombstone_gc`` enabled this advances the stable frontier
        and purges stable SDIS tombstones everywhere."""
        for site in self.sites.values():
            site.broadcast_ack()
        self.settle()
