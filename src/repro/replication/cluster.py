"""Multi-site simulation harness.

``Cluster`` assembles N replica sites over one simulated network and
offers the operations the integration tests and examples need: drive
edits at any site, run the network to quiescence, tick the anti-entropy
policy, and check convergence (the CRDT property: same operations, any
causal order, same state). The network carries only wire-frame bytes,
so ``cluster.network.bytes_delivered`` / ``link_bytes`` are measured
traffic, not estimates.

Churn (:meth:`Cluster.run_churn`) is scripted, not random: a schedule
of :class:`ChurnEvent` actions — join, graceful leave, crash, durable
recover, partition, heal — interleaves with seeded background edits
and *partial* network pumping, so membership changes land while
messages are genuinely in flight. :meth:`Cluster.converge` then heals,
settles and ticks anti-entropy (advancing simulated time when the
policies' age and backoff thresholds have not expired yet) until every
surviving site agrees.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.disambiguator import SiteId
from repro.errors import ReplicationError
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.site import ReplicaSite
from repro.replication.sync import AntiEntropyPolicy
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership or fault action, fired at ``step``.

    ``action`` is one of:

    - ``"join"`` — a brand-new site enters (fresh id unless ``site``
      names one); it bootstraps via anti-entropy.
    - ``"leave"`` — graceful permanent departure of ``site``: the
      survivors forget it (its last ack stops pinning the stable
      frontier) and it never returns under that id.
    - ``"crash"`` — process death of ``site`` mid-flight: no flush, no
      goodbye. A durable site's store is retained for a later recover.
    - ``"recover"`` — resurrect a crashed *durable* ``site`` from its
      retained store (checkpoint + WAL tail). Volatile sites cannot
      recover — a restarted volatile process would re-mint identifiers
      it already used; script a ``join`` instead.
    - ``"partition"`` — split the network into ``groups`` (sites in no
      group form the implicit rest).
    - ``"heal"`` — remove the partition.
    """

    step: int
    action: str
    site: Optional[SiteId] = None
    groups: Tuple[Tuple[SiteId, ...], ...] = ()


class Cluster:
    """N cooperating replica sites on a simulated network."""

    def __init__(
        self,
        n_sites: int,
        mode: str = "udis",
        balanced: bool = True,
        config: NetworkConfig | None = None,
        seed: int = 0,
        first_site: SiteId = 1,
        tombstone_gc: bool = False,
        policy: Optional[AntiEntropyPolicy] = None,
    ) -> None:
        if n_sites < 1:
            raise ReplicationError("a cluster needs at least one site")
        self.network = SimulatedNetwork(config, seed=seed)
        self.mode = mode
        self.balanced = balanced
        self.tombstone_gc = tombstone_gc
        self.policy = policy
        self.sites: Dict[SiteId, ReplicaSite] = {}
        #: High-water mark of ids ever used: default-id joins must not
        #: collide with a crashed (recoverable) or departed site's id.
        self._next_site_id: SiteId = first_site
        for offset in range(n_sites):
            self.add_site(first_site + offset)

    def add_site(self, site_id: Optional[SiteId] = None,
                 store: Optional["DurableStore"] = None) -> ReplicaSite:
        """Register one more site (default id: max + 1) — a late
        joiner. It starts empty and catches up like any lagging
        replica: by replay for what still reaches it, and by the
        anti-entropy exchange (see :meth:`anti_entropy`) for the
        history sent before it existed.

        With ``store`` the site is durable — and if the store already
        holds history (e.g. from a site removed by :meth:`crash_site`),
        the new site *resurrects* from it: checkpoint + WAL tail
        replay, then the ordinary catch-up paths close whatever gap
        accumulated while it was down."""
        if site_id is None:
            site_id = self._next_site_id
        if site_id in self.sites:
            raise ReplicationError(f"site {site_id} already in the cluster")
        self._next_site_id = max(self._next_site_id, site_id + 1)
        self.sites[site_id] = ReplicaSite(
            site_id, self.network, mode=self.mode, balanced=self.balanced,
            tombstone_gc=self.tombstone_gc, policy=self.policy, store=store,
        )
        return self.sites[site_id]

    def crash_site(self, site_id: SiteId) -> Optional["DurableStore"]:
        """Kill a site: it vanishes from the cluster mid-flight (no
        flush, no goodbye), exactly like a process death. Returns its
        durable store (None for a volatile site) for a later
        :meth:`add_site` resurrection."""
        site = self.sites.pop(site_id, None)
        if site is None:
            raise ReplicationError(f"site {site_id} not in the cluster")
        return site.crash()

    def leave_site(self, site_id: SiteId) -> None:
        """Graceful *permanent* departure: the site detaches and every
        survivor forgets it, so its last acknowledgement stops pinning
        the stable frontier and peer rotation drops it. The id must
        never rejoin (a returning participant is a ``join`` with a
        fresh id, or a durable ``recover`` after a *crash*)."""
        site = self.sites.pop(site_id, None)
        if site is None:
            raise ReplicationError(f"site {site_id} not in the cluster")
        self.network.disconnect(site_id)
        for survivor in self.sites.values():
            survivor.forget_peer(site_id)

    def __getitem__(self, site: SiteId) -> ReplicaSite:
        return self.sites[site]

    def __iter__(self):
        return iter(self.sites.values())

    def __len__(self) -> int:
        return len(self.sites)

    @property
    def site_ids(self) -> List[SiteId]:
        return sorted(self.sites)

    # -- simulation control ---------------------------------------------------------

    def settle(self, max_events: int = 1_000_000) -> int:
        """Run the network until no undelivered messages remain."""
        return self.network.run(max_events)

    def anti_entropy(self, max_rounds: int = 8,
                     max_events: int = 1_000_000) -> int:
        """Tick the anti-entropy policy until no site wants a snapshot.

        Each round settles the network, then lets every site consult
        its :class:`repro.replication.sync.AntiEntropyPolicy`; sites
        with a persistent causal gap send ``SyncRequest`` frames, the
        next settle carries the responses. Returns the number of
        requests issued. Sites that have heard nothing (no buffered
        envelopes) have no gap to detect — a joiner that must catch up
        from silence calls ``site.request_sync(peer)`` explicitly.

        A quiesced simulation has no event to pull time forward, so
        when gaps persist but nothing fired (age thresholds, jittered
        intervals or backoffs still running), the round *advances
        simulated time* past the largest policy threshold instead of
        giving up — that is what lets declined and backed-off sites
        rotate to another peer within one call.
        """
        requests = 0
        for _ in range(max_rounds):
            self.settle(max_events)
            fired = sum(
                1 for site in self.sites.values() if site.maybe_request_sync()
            )
            if not fired:
                if not self.has_gaps():
                    break
                self.network.advance(self._idle_advance())
                continue
            requests += fired
        self.settle(max_events)
        return requests

    def has_gaps(self) -> bool:
        """Is any site parked behind an unmet causal gap?"""
        return any(site.broadcast.blocked_since is not None
                   for site in self.sites.values())

    def _idle_advance(self) -> float:
        """Simulated ms that guarantee every site's age trigger and
        request-interval gate (jitter included) can expire."""
        step = 1.0
        for site in self.sites.values():
            p = site.policy
            step = max(step, max(p.max_gap_age, p.min_request_interval)
                       * (1.0 + p.jitter))
        return step + 1.0

    def converge(self, max_cycles: int = 20,
                 max_events: int = 2_000_000) -> int:
        """Heal, then settle + anti-entropy until every site agrees
        (or the cycle budget runs out — :meth:`assert_converged` will
        then name the divergence). Returns total sync requests issued.
        The loop form matters under churn: one anti-entropy pass can
        close a gap whose *responder* was itself still catching up."""
        self.heal()
        requests = 0
        for _ in range(max_cycles):
            self.settle(max_events)
            if not self.has_gaps() and not self.network.pending \
                    and self.is_converged():
                break
            requests += self.anti_entropy(max_events=max_events)
        self.settle(max_events)
        return requests

    def partition(self, *groups) -> None:
        """Partition the network (see :meth:`SimulatedNetwork.partition`)."""
        self.network.partition(*groups)

    def heal(self) -> None:
        """Heal the partition and release held messages."""
        self.network.heal()

    @contextmanager
    def partitioned(self, *groups):
        """Partition for the duration of a ``with`` block, healing on
        exit **including on exception** — a test that fails inside the
        block must not leak a split network into its own teardown
        assertions (or, under soak loops, into the next round). Yields
        the cluster so the block can keep a short name:

            with cluster.partitioned({1, 2}, {3}):
                cluster[1].insert(0, "x")
                cluster.settle()

        Healing releases the held messages but does not settle; the
        caller decides when (and whether) to pump them.
        """
        self.partition(*groups)
        try:
            yield self
        finally:
            self.heal()

    # -- scripted churn ---------------------------------------------------------------

    def run_churn(
        self,
        schedule: Iterable[ChurnEvent],
        steps: Optional[int] = None,
        edits_per_step: int = 2,
        pump: int = 200,
        seed: int = 0,
        alphabet: Sequence[object] = tuple("abcdefghijklmnop"),
    ) -> Dict[str, int]:
        """Drive the cluster through a scripted churn schedule.

        Each step fires the schedule's actions for that step, makes up
        to ``edits_per_step`` seeded random edits at random *alive*
        sites, lets every site's anti-entropy policy tick once, then
        pumps at most ``pump`` network events — deliberately **not** a
        full settle, so the next step's crashes and partitions land
        while messages are in flight. Crashed durable stores are
        retained and matched to later ``recover`` events by site id.

        The call leaves the cluster dirty (undelivered traffic, open
        gaps) by design: follow with :meth:`converge` and
        :meth:`assert_converged`. Returns counters for the report
        (steps run, actions applied, edits made, sync requests fired).
        """
        events = sorted(schedule, key=lambda e: e.step)
        if steps is None:
            steps = events[-1].step + 1 if events else 0
        rng = derive_rng(seed, "cluster-churn")
        stores: Dict[SiteId, "DurableStore"] = {}
        applied = edits = requests = 0
        queue = list(events)
        for step in range(steps):
            while queue and queue[0].step <= step:
                self._apply_churn_event(queue.pop(0), stores)
                applied += 1
            for _ in range(edits_per_step):
                if not self.sites:
                    break
                site = self.sites[rng.choice(self.site_ids)]
                if len(site) > 1 and rng.random() < 0.35:
                    site.delete(rng.randrange(len(site)))
                else:
                    site.insert(rng.randint(0, len(site)),
                                f"c{site.site}s{step}")
                edits += 1
            requests += sum(
                1 for site in self.sites.values()
                if site.maybe_request_sync()
            )
            pumped = False
            for _ in range(pump):
                if not self.network.step():
                    break
                pumped = True
            if not pumped:
                # Quiesced mid-churn: advance time so age- and
                # backoff-gated policies can make progress next step.
                self.network.advance(self._idle_advance())
        return {"steps": steps, "actions": applied,
                "edits": edits, "requests": requests}

    def _apply_churn_event(self, event: ChurnEvent,
                           stores: Dict[SiteId, "DurableStore"]) -> None:
        if event.action == "join":
            self.add_site(event.site)
        elif event.action == "leave":
            self.leave_site(event.site)
        elif event.action == "crash":
            stores[event.site] = self.crash_site(event.site)
        elif event.action == "recover":
            store = stores.pop(event.site, None)
            if store is None:
                raise ReplicationError(
                    f"site {event.site} cannot recover: no durable store "
                    "was retained from a crash (volatile sites rejoin as "
                    "fresh ids — script a 'join')"
                )
            self.add_site(event.site, store=store)
        elif event.action == "partition":
            self.partition(*(set(group) for group in event.groups))
        elif event.action == "heal":
            self.heal()
        else:
            raise ReplicationError(
                f"unknown churn action {event.action!r}"
            )

    def wire_bytes_per_site(self) -> Dict[SiteId, Dict[str, int]]:
        """Measured per-site wire traffic: delivered payload bytes each
        site put on the wire and received, from the network's per-link
        counters (departed sites included — their traffic happened)."""
        ids = set(self.sites)
        for src, dst in self.network.link_bytes:
            ids.add(src)
            ids.add(dst)
        return {
            site: {
                "sent": self.network.link_bytes_from(site),
                "received": self.network.link_bytes_to(site),
            }
            for site in sorted(ids)
        }

    # -- convergence -----------------------------------------------------------------

    def is_converged(self) -> bool:
        """All sites expose the same visible atom sequence."""
        contents = [site.atoms() for site in self.sites.values()]
        return all(c == contents[0] for c in contents[1:])

    def assert_converged(self, identities: bool = False) -> List[object]:
        """Check convergence and shared-state integrity; returns the
        common atom sequence.

        Requires true quiescence: no messages pending in the queue
        *and* none held behind a partition — a partitioned cluster has
        traffic its isolated sites have not seen, so agreement among
        them would be vacuous, not convergence. Heal and settle first.

        With ``identities`` the check is strengthened from visible
        atoms to full **PosID identity**: every site must bind the same
        position identifier to the same atom, position by position —
        what the delta-merge path must preserve (same text via
        different identifiers would be a silent future conflict).
        """
        if self.network.pending:
            raise ReplicationError(
                f"{self.network.pending} messages still pending; "
                "call settle() before checking convergence"
            )
        if self.network.held:
            raise ReplicationError(
                f"{self.network.held} messages held behind a partition; "
                "heal() and settle() before checking convergence"
            )
        reference: Optional[List[object]] = None
        reference_ids: Optional[List[Tuple[object, object]]] = None
        for site in self.sites.values():
            atoms = site.atoms()
            site.doc.check()
            if reference is None:
                reference = atoms
            elif atoms != reference:
                raise ReplicationError(
                    f"site {site.site} diverged: {atoms!r} != {reference!r}"
                )
            if not identities:
                continue
            bound = self._identity(site)
            if reference_ids is None:
                reference_ids = bound
            elif bound != reference_ids:
                diverged = [
                    index for index, (ours, theirs)
                    in enumerate(zip(bound, reference_ids))
                    if ours != theirs
                ][:3]
                raise ReplicationError(
                    f"site {site.site} agrees on text but not identity "
                    f"(first differing positions: {diverged})"
                )
        return reference or []

    @staticmethod
    def _identity(site: ReplicaSite) -> List[Tuple[object, object]]:
        """The site's (PosID, atom) sequence, in document order."""
        from repro.core.node import slot_posid

        slots = site.doc.tree.live_slice(0, len(site.doc))
        if slots is not None:
            return [(slot_posid(slot), slot.atom) for slot in slots]
        return [
            (site.doc.posid_at(index), atom)
            for index, atom in enumerate(site.atoms())
        ]

    # -- convenience editing -----------------------------------------------------------

    def bootstrap(self, atoms: Sequence[object],
                  site: Optional[SiteId] = None) -> None:
        """Create initial content at one site and replicate it."""
        origin = self.sites[site if site is not None else self.site_ids[0]]
        origin.insert_run(0, list(atoms))
        self.settle()

    def gossip_acks(self) -> None:
        """Every site gossips its applied clock and the network settles;
        with ``tombstone_gc`` enabled this advances the stable frontier
        and purges stable SDIS tombstones everywhere."""
        for site in self.sites.values():
            site.broadcast_ack()
        self.settle()
