"""Multi-site simulation harness.

``Cluster`` assembles N replica sites over one simulated network and
offers the operations the integration tests and examples need: drive
edits at any site, run the network to quiescence, and check convergence
(the CRDT property: same operations, any causal order, same state).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.disambiguator import SiteId
from repro.errors import ReplicationError
from repro.replication.network import NetworkConfig, SimulatedNetwork
from repro.replication.site import ReplicaSite


class Cluster:
    """N cooperating replica sites on a simulated network."""

    def __init__(
        self,
        n_sites: int,
        mode: str = "udis",
        balanced: bool = True,
        config: NetworkConfig | None = None,
        seed: int = 0,
        first_site: SiteId = 1,
        tombstone_gc: bool = False,
    ) -> None:
        if n_sites < 1:
            raise ReplicationError("a cluster needs at least one site")
        self.network = SimulatedNetwork(config, seed=seed)
        self.sites: Dict[SiteId, ReplicaSite] = {}
        for offset in range(n_sites):
            site_id = first_site + offset
            self.sites[site_id] = ReplicaSite(
                site_id, self.network, mode=mode, balanced=balanced,
                tombstone_gc=tombstone_gc,
            )

    def __getitem__(self, site: SiteId) -> ReplicaSite:
        return self.sites[site]

    def __iter__(self):
        return iter(self.sites.values())

    def __len__(self) -> int:
        return len(self.sites)

    @property
    def site_ids(self) -> List[SiteId]:
        return sorted(self.sites)

    # -- simulation control ---------------------------------------------------------

    def settle(self, max_events: int = 1_000_000) -> int:
        """Run the network until no undelivered messages remain."""
        return self.network.run(max_events)

    def partition(self, *groups) -> None:
        """Partition the network (see :meth:`SimulatedNetwork.partition`)."""
        self.network.partition(*groups)

    def heal(self) -> None:
        """Heal the partition and release held messages."""
        self.network.heal()

    # -- convergence -----------------------------------------------------------------

    def is_converged(self) -> bool:
        """All sites expose the same visible atom sequence."""
        contents = [site.atoms() for site in self.sites.values()]
        return all(c == contents[0] for c in contents[1:])

    def assert_converged(self) -> List[object]:
        """Check convergence and shared-state integrity; returns the
        common atom sequence."""
        if self.network.pending:
            raise ReplicationError(
                f"{self.network.pending} messages still pending; "
                "call settle() before checking convergence"
            )
        reference: Optional[List[object]] = None
        for site in self.sites.values():
            atoms = site.atoms()
            site.doc.check()
            if reference is None:
                reference = atoms
            elif atoms != reference:
                raise ReplicationError(
                    f"site {site.site} diverged: {atoms!r} != {reference!r}"
                )
        return reference or []

    # -- convenience editing -----------------------------------------------------------

    def bootstrap(self, atoms: Sequence[object],
                  site: Optional[SiteId] = None) -> None:
        """Create initial content at one site and replicate it."""
        origin = self.sites[site if site is not None else self.site_ids[0]]
        origin.insert_run(0, list(atoms))
        self.settle()

    def gossip_acks(self) -> None:
        """Every site gossips its applied clock and the network settles;
        with ``tombstone_gc`` enabled this advances the stable frontier
        and purges stable SDIS tombstones everywhere."""
        for site in self.sites.values():
            site.broadcast_ack()
        self.settle()
