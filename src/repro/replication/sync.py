"""State-transfer anti-entropy: catch-up by snapshot, not by replay.

A replica that is far behind — freshly joined, or reconnecting after a
long partition — would pay one causal envelope and one tree
materialization *per atom* to catch up by operation replay. The paper's
storage insight (quiescent regions need no per-atom metadata) applies
to the wire just as it does to RAM and disk: the up-to-date peer ships
its document as a v2 **state frame** (:mod:`repro.core.encoding`),
where collapsed and canonical regions travel as runs, and the receiver
loads those runs straight into :class:`repro.core.node.ArrayLeaf`
storage without ever exploding them.

Since this PR the exchange is a real network protocol
(:mod:`repro.replication.wire`): the lagging site sends a
:class:`~repro.replication.wire.SyncRequest` carrying its clock; a
peer whose clock dominates it answers with a
:class:`~repro.replication.wire.SyncResponse` — the state frame, the
sender's frontier and its outstanding delete log, CRC-guarded bytes on
the simulated wire. :class:`StateTransfer` *is* that response frame
(one definition, not two); the direct
:meth:`repro.replication.site.ReplicaSite.sync_from` convenience still
exists but routes through the same encode → decode path, so its byte
accounting is the measured frame length.

The safety argument is the standard state-shipping one: the receiver
may adopt the snapshot only if the sender's causal frontier dominates
its own — then the snapshot contains every event the receiver has
applied (including the receiver's own edits, echoed back), and
replacing the document loses nothing.
:meth:`repro.replication.site.ReplicaSite.apply_state_transfer`
enforces the check and
:meth:`repro.replication.broadcast.CausalBroadcast.catch_up` adopts
the frontier so in-flight envelopes already covered by the snapshot
are filtered as duplicates.

*When* to fall back from replay to state transfer is
:class:`AntiEntropyPolicy`'s call: a replica that has been staring at
an unmet causal gap for too long (or has too many envelopes parked
behind it) stops waiting for retransmissions and asks the gap's origin
for a snapshot. :meth:`repro.replication.cluster.Cluster.anti_entropy`
ticks the policy across a whole simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.replica import SyncReport
from repro.replication.wire import StateTransfer as _WireStateTransfer
from repro.util.backoff import BackoffPolicy

#: Re-exported: the anti-entropy message is the wire's SyncResponse
#: frame under its historical name (see module docstring).
StateTransfer = _WireStateTransfer


@dataclass(frozen=True)
class AntiEntropyPolicy:
    """When a lagging replica requests state transfer instead of
    waiting for replay.

    Replay is the cheap path (retransmissions usually fill a gap), so
    the policy is deliberately lazy: it fires only when a causal gap
    has *persisted* — measured by the age of the oldest buffered
    envelope's arrival, or by how many envelopes are parked behind the
    gap — and backs off between requests so a slow responder is not
    pelted with duplicate snapshot work.
    """

    #: Buffered envelopes that trigger a request regardless of age.
    max_buffered: int = 8
    #: Simulated milliseconds a causal gap may persist before a
    #: request fires.
    max_gap_age: float = 400.0
    #: Minimum simulated milliseconds between two requests from the
    #: same site.
    min_request_interval: float = 200.0
    #: Per-peer exponential backoff after a decline (or a useless
    #: response): first retry after ``backoff_base`` simulated ms,
    #: doubling (``backoff_factor``) per consecutive failure up to
    #: ``backoff_max``. Successful catch-up resets the peer's score.
    #: The schedule is :class:`repro.util.backoff.BackoffPolicy` — the
    #: same implementation the site daemon's reconnect loop uses.
    backoff_base: float = 200.0
    backoff_factor: float = 2.0
    backoff_max: float = 3200.0
    #: Jitter fraction: trigger thresholds, request intervals and
    #: backoffs stretch by up to this share of themselves, drawn from a
    #: *seeded* stream (:data:`jitter_seed` — no wall clock anywhere),
    #: so a hundred sites detecting the same gap at the same simulated
    #: instant do not synchronize into a request storm. Zero disables.
    jitter: float = 0.5
    #: Seed of the deterministic jitter stream; each site derives an
    #: independent child stream from it (site id as the label).
    jitter_seed: int = 0

    def should_request(self, buffered: int, gap_age: float,
                       stretch: float = 0.0) -> bool:
        """The trigger test, given the current buffer depth and the
        age of the oldest unmet gap. ``stretch`` inflates the age
        threshold by that fraction (the caller's jitter draw), leaving
        the buffer-depth trigger exact."""
        if buffered <= 0:
            return False
        return (buffered >= self.max_buffered
                or gap_age >= self.max_gap_age * (1.0 + stretch))

    @property
    def backoff_policy(self) -> BackoffPolicy:
        """This policy's retry schedule as the shared
        :class:`repro.util.backoff.BackoffPolicy`."""
        return BackoffPolicy(self.backoff_base, self.backoff_factor,
                             self.backoff_max)

    def backoff(self, failures: int) -> float:
        """Backoff (simulated ms) after ``failures`` consecutive
        failed exchanges with one peer (delegates to
        :meth:`backoff_policy`)."""
        return self.backoff_policy.delay(failures)


@dataclass(frozen=True)
class SyncStats(SyncReport):
    """A site-level catch-up report: the facade's
    :class:`repro.replica.SyncReport` (atoms, wire bytes, segment
    counts — one definition, not two) plus what only the site layer
    can see."""

    #: Collapsed regions the receiver holds as array leaves after the
    #: load (runs land as leaves — they are never exploded in transit).
    loaded_leaves: int = 0
    #: Delete-log entries inherited from the sender (tombstones the
    #: receiver can now purge once they become causally stable).
    inherited_deletes: int = 0
    #: Responses/deltas this site has dropped as stale so far (arrived
    #: after replay or local progress overtook them) — surfaced here so
    #: a catch-up report shows how many exchanges were wasted before
    #: this one landed.
    stale_responses: int = 0
