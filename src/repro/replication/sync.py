"""State-transfer anti-entropy: catch-up by snapshot, not by replay.

A replica that is far behind — freshly joined, or reconnecting after a
long partition — would pay one causal envelope and one tree
materialization *per atom* to catch up by operation replay. The paper's
storage insight (quiescent regions need no per-atom metadata) applies
to the wire just as it does to RAM and disk: the up-to-date peer ships
its document as a v2 **state frame** (:mod:`repro.core.encoding`),
where collapsed and canonical regions travel as runs, and the receiver
loads those runs straight into :class:`repro.core.node.ArrayLeaf`
storage without ever exploding them.

The safety argument is the standard state-shipping one: the receiver
may adopt the snapshot only if the sender's causal frontier dominates
its own — then the snapshot contains every event the receiver has
applied (including the receiver's own edits, echoed back), and
replacing the document loses nothing. :class:`StateTransfer` carries
the frontier; :meth:`repro.replication.site.ReplicaSite.sync_from`
enforces the check and
:meth:`repro.replication.broadcast.CausalBroadcast.catch_up` adopts
the frontier so in-flight envelopes already covered by the snapshot
are filtered as duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.disambiguator import SiteId
from repro.core.encoding import DocumentState
from repro.replica import SyncReport
from repro.replication.clock import VectorClock

#: Wire bytes per vector-clock entry shipped with a snapshot: a 6-byte
#: site id plus a 4-byte counter.
CLOCK_ENTRY_WIRE_BYTES = 10


@dataclass(frozen=True)
class StateTransfer:
    """One replica's document state plus its causal frontier.

    The anti-entropy message: ``state`` is the encoded v2 state frame
    (runs + singleton records + digest), ``clock`` the sender's vector
    clock at snapshot time. A receiver whose clock the snapshot
    dominates may replace its document with the snapshot and adopt the
    frontier.
    """

    site: SiteId
    clock: VectorClock
    state: DocumentState

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire: the state frame plus the clock."""
        entries = sum(1 for _ in self.clock.items())
        return self.state.wire_bytes + CLOCK_ENTRY_WIRE_BYTES * entries


@dataclass(frozen=True)
class SyncStats(SyncReport):
    """A site-level catch-up report: the facade's
    :class:`repro.replica.SyncReport` (atoms, wire bytes, segment
    counts — one definition, not two) plus what only the site layer
    can see."""

    #: Collapsed regions the receiver holds as array leaves after the
    #: load (runs land as leaves — they are never exploded in transit).
    loaded_leaves: int = 0
