"""Distributed commitment for ``flatten`` (section 4.2.1).

Flatten does not genuinely commute with edits, so the paper runs it
through a commitment protocol: every site votes, and a site votes "No"
when it has observed an insert, delete or flatten inside the subtree
that the initiator's snapshot does not cover. Any distributed
commitment protocol will do; this module implements two-phase commit.

Message flow (coordinator = the initiating site):

1. coordinator snapshots its vector clock, locks the region locally, and
   sends ``PrepareMsg`` to every other site (point-to-point);
2. each participant votes (``VoteMsg``). A Yes vote locks the region
   against *local* edits until the outcome is known — the classic 2PC
   blocking window;
3. on unanimous Yes, the coordinator applies the flatten and broadcasts
   it as a regular operation on the *causal* channel; applying it
   releases the participant's lock. Riding the causal stream is what
   makes post-flatten edits (with their renamed identifiers) arrive
   after the flatten everywhere. On any No, the coordinator sends
   ``AbortMsg`` point-to-point and everyone unlocks.

Why commit is safe: a Yes vote requires the participant's clock to
dominate the snapshot *and* its region-edit log to contain nothing
beyond the snapshot. Every edit is applied first at its origin, so a
unanimous Yes means no edit outside the snapshot exists anywhere; all
voters therefore hold identical region contents, and the deterministic
rebuild agrees (the digest in :class:`repro.core.ops.FlattenOp` double-
checks this at application time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.core.disambiguator import SiteId
from repro.core.path import PosID
from repro.errors import CommitError
from repro.replication.clock import VectorClock


@dataclass(frozen=True)
class PrepareMsg:
    """Phase 1: request votes for flattening ``path``."""

    txn: str
    path: PosID
    snapshot: VectorClock
    initiator: SiteId


@dataclass(frozen=True)
class VoteMsg:
    """Phase 1 reply."""

    txn: str
    voter: SiteId
    yes: bool


@dataclass(frozen=True)
class AbortMsg:
    """Outcome broadcast when any site voted No."""

    txn: str


class CommitDecision(enum.Enum):
    """Lifecycle of a flatten transaction at its coordinator."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"


class FlattenCoordinator:
    """Coordinator state for one flatten transaction.

    The owning :class:`repro.replication.site.ReplicaSite` feeds votes in
    via :meth:`on_vote`; ``on_commit``/``on_abort`` callbacks perform the
    site-level effects (apply + causal broadcast, or abort fan-out).
    """

    def __init__(
        self,
        txn: str,
        path: PosID,
        participants: Set[SiteId],
        on_commit: Callable[[], None],
        on_abort: Callable[[], None],
    ) -> None:
        self.txn = txn
        self.path = path
        self.participants = set(participants)
        self._on_commit = on_commit
        self._on_abort = on_abort
        self.decision = CommitDecision.PENDING
        self._votes: Dict[SiteId, bool] = {}

    def on_vote(self, vote: VoteMsg) -> None:
        """Record one participant's vote; decides when all are in."""
        if self.decision is not CommitDecision.PENDING:
            return  # late vote after an early abort
        if vote.voter not in self.participants:
            raise CommitError(f"vote from non-participant {vote.voter}")
        self._votes[vote.voter] = vote.yes
        if not vote.yes:
            # One No suffices: abort immediately (standard 2PC).
            self.decision = CommitDecision.ABORTED
            self._on_abort()
            return
        if len(self._votes) == len(self.participants):
            self.decision = CommitDecision.COMMITTED
            self._on_commit()

    def decide_alone(self) -> None:
        """No other participants: commit immediately."""
        if self.participants:
            raise CommitError("decide_alone with participants present")
        self.decision = CommitDecision.COMMITTED
        self._on_commit()

    @property
    def votes_received(self) -> int:
        return len(self._votes)


def paths_overlap(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Whether two region paths (branch-bit tuples) share any slot:
    one region contains the other iff one path prefixes the other."""
    shorter = min(len(a), len(b))
    return a[:shorter] == b[:shorter]


class RegionLockTable:
    """Locked regions at one site: flatten transactions awaiting their
    outcome. Local edits inside a locked region are refused (the 2PC
    blocking window); remote causal deliveries are not gated."""

    def __init__(self) -> None:
        self._locks: Dict[str, Tuple[int, ...]] = {}

    def lock(self, txn: str, path: PosID) -> None:
        self._locks[txn] = path.bits()

    def unlock(self, txn: str) -> None:
        self._locks.pop(txn, None)

    def overlapping(self, bits: Tuple[int, ...]) -> Optional[str]:
        """Transaction id of a lock overlapping ``bits``, if any."""
        for txn, region in self._locks.items():
            if paths_overlap(region, bits):
                return txn
        return None

    def is_locked(self, bits: Tuple[int, ...]) -> bool:
        return self.overlapping(bits) is not None

    def __len__(self) -> int:
        return len(self._locks)
