"""Replication substrate: what the paper assumes around the CRDT.

Treedoc requires operations to replay in happened-before order
(section 1); this package supplies that substrate for simulation and
testing:

- :mod:`repro.replication.clock` — vector and Lamport clocks;
- :mod:`repro.replication.network` — a deterministic discrete-event
  network with latency, reordering, loss (with retransmission),
  duplication and partitions;
- :mod:`repro.replication.broadcast` — causal broadcast with
  vector-clock delivery buffering;
- :mod:`repro.replication.site` — a replica site wiring a Treedoc to
  the broadcast layer;
- :mod:`repro.replication.commit` — the distributed commitment protocol
  guarding ``flatten`` (section 4.2.1; two-phase commit — the paper
  allows any commitment protocol);
- :mod:`repro.replication.stability` — SDIS tombstone garbage collection
  through causal stability (section 4.2);
- :mod:`repro.replication.wire` — the peer protocol: every replication
  message as a typed, self-describing, CRC-guarded byte frame (causal
  envelopes, ack gossip, anti-entropy request/response, commitment);
- :mod:`repro.replication.sync` — state-transfer anti-entropy: a lagging
  replica catches up from one v2 state frame (collapsed regions as
  runs) instead of per-atom replay, with :class:`AntiEntropyPolicy`
  deciding when to stop waiting for replay;
- :mod:`repro.replication.cluster` — an N-site simulation harness with
  convergence checking and an anti-entropy tick.
"""

from repro.replication.clock import VectorClock, LamportClock
from repro.replication.network import SimulatedNetwork, NetworkConfig
from repro.replication.broadcast import CausalBroadcast
from repro.replication.wire import (
    AckFrame,
    EnvelopeFrame,
    SyncRequest,
    SyncResponse,
    decode_wire,
    encode_wire,
)
from repro.replication.site import ReplicaSite
from repro.replication.commit import FlattenCoordinator, CommitDecision
from repro.replication.sync import AntiEntropyPolicy, StateTransfer, SyncStats
from repro.replication.cluster import Cluster

__all__ = [
    "VectorClock",
    "LamportClock",
    "SimulatedNetwork",
    "NetworkConfig",
    "CausalBroadcast",
    "EnvelopeFrame",
    "AckFrame",
    "SyncRequest",
    "SyncResponse",
    "encode_wire",
    "decode_wire",
    "ReplicaSite",
    "FlattenCoordinator",
    "CommitDecision",
    "AntiEntropyPolicy",
    "StateTransfer",
    "SyncStats",
    "Cluster",
]
