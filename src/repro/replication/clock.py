"""Logical clocks: the causality substrate (Lamport [1]).

The happened-before and concurrency relations of the paper are exactly
Lamport's; vector clocks give us the operational test the causal
broadcast layer and the flatten commitment protocol need.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.disambiguator import SiteId


class VectorClock:
    """A vector clock over site identifiers.

    Immutable-style API: ``tick``/``merge`` return new clocks, keeping
    clock snapshots attached to messages safe from aliasing bugs.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Dict[SiteId, int] | None = None) -> None:
        self._counts: Dict[SiteId, int] = dict(counts or {})

    def get(self, site: SiteId) -> int:
        """The number of events observed from ``site``."""
        return self._counts.get(site, 0)

    def tick(self, site: SiteId) -> "VectorClock":
        """A new clock with ``site``'s component incremented."""
        counts = dict(self._counts)
        counts[site] = counts.get(site, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum."""
        counts = dict(self._counts)
        for site, count in other._counts.items():
            if counts.get(site, 0) < count:
                counts[site] = count
        return VectorClock(counts)

    def dominates(self, other: "VectorClock") -> bool:
        """``self >= other`` component-wise: other happened-before-or-
        equals self."""
        return all(self.get(site) >= count
                   for site, count in other._counts.items())

    def strictly_dominates(self, other: "VectorClock") -> bool:
        """``self >= other`` with at least one strict component."""
        return self.dominates(other) and self._counts != other._counts

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def items(self) -> Iterator[Tuple[SiteId, int]]:
        return iter(self._counts.items())

    def copy(self) -> "VectorClock":
        return VectorClock(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {s: c for s, c in self._counts.items() if c}
        theirs = {s: c for s, c in other._counts.items() if c}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(tuple(sorted(
            (s, c) for s, c in self._counts.items() if c)))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{site}:{count}" for site, count in sorted(self._counts.items())
        )
        return f"VC({inner})"


class LamportClock:
    """A scalar Lamport clock (used by tests and the ordering lemmas)."""

    __slots__ = ("time",)

    def __init__(self, time: int = 0) -> None:
        self.time = time

    def tick(self) -> int:
        """Advance for a local event; returns the new time."""
        self.time += 1
        return self.time

    def observe(self, remote_time: int) -> int:
        """Advance past a received timestamp; returns the new time."""
        self.time = max(self.time, remote_time) + 1
        return self.time

    def __repr__(self) -> str:
        return f"Lamport({self.time})"
