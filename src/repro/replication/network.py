"""Deterministic discrete-event network simulator.

Models the asynchronous message-passing environment the paper assumes:
messages between sites experience variable latency (hence reordering),
can be lost (the transport retransmits, so delivery is eventual — the
fair-lossy link + retry abstraction), can be duplicated, and partitions
can isolate groups of sites for a while.

Everything is driven by one seeded RNG, so a whole multi-site scenario
replays identically from its seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.disambiguator import SiteId
from repro.errors import ReplicationError
from repro.util.rng import derive_rng

#: A handler invoked on delivery: handler(src, payload).
Handler = Callable[[SiteId, object], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Tunables of the simulated network."""

    #: Uniform latency bounds (simulated milliseconds).
    min_latency: float = 5.0
    max_latency: float = 50.0
    #: Probability a transmission attempt is lost (and retransmitted).
    drop_rate: float = 0.0
    #: Probability a delivered message is delivered once more.
    duplicate_rate: float = 0.0
    #: Delay before a lost transmission is retried.
    retransmit_delay: float = 100.0
    #: Attempts before the transport stops pretending to lose the
    #: message (keeps simulations finite; models eventual delivery).
    max_transmit_attempts: int = 16


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    src: SiteId = field(compare=False)
    dst: SiteId = field(compare=False)
    payload: object = field(compare=False)
    attempt: int = field(compare=False, default=1)


class SimulatedNetwork:
    """An event-queue network connecting registered sites."""

    def __init__(self, config: NetworkConfig | None = None,
                 seed: int = 0) -> None:
        self.config = config or NetworkConfig()
        self._rng = derive_rng(seed, "network")
        self._handlers: Dict[SiteId, Handler] = {}
        self._queue: List[_Event] = []
        self._held: List[_Event] = []  # messages blocked by a partition
        self._partitions: List[Set[SiteId]] = []
        self._sequence = 0
        self.now = 0.0
        #: Delivery counters, for assertions and metrics.
        self.sent_messages = 0
        self.delivered_messages = 0
        self.dropped_transmissions = 0
        self.duplicated_messages = 0

    # -- wiring ------------------------------------------------------------------

    def register(self, site: SiteId, handler: Handler) -> None:
        """Attach a site's delivery handler."""
        if site in self._handlers:
            raise ReplicationError(f"site {site} already registered")
        self._handlers[site] = handler

    @property
    def sites(self) -> Tuple[SiteId, ...]:
        return tuple(sorted(self._handlers))

    # -- partitions -----------------------------------------------------------------

    def partition(self, *groups: Set[SiteId]) -> None:
        """Split the network: messages may only flow within a group.

        Sites not mentioned in any group form an implicit final group.
        """
        named = [set(g) for g in groups]
        rest = set(self._handlers) - set().union(*named) if named else set()
        if rest:
            named.append(rest)
        self._partitions = named

    def heal(self) -> None:
        """Remove the partition and release held messages."""
        self._partitions = []
        for event in self._held:
            # Held messages resume with a fresh latency from *now*.
            self._schedule(event.src, event.dst, event.payload,
                           self.now + self._latency(), event.attempt)
        self._held = []

    def _blocked(self, a: SiteId, b: SiteId) -> bool:
        for group in self._partitions:
            if (a in group) != (b in group):
                return True
        return False

    # -- sending --------------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: object) -> None:
        """Enqueue a message; delivery happens during :meth:`run`."""
        if dst not in self._handlers:
            raise ReplicationError(f"unknown destination site {dst}")
        self.sent_messages += 1
        self._schedule(src, dst, payload, self.now + self._latency(), 1)

    def broadcast(self, src: SiteId, payload: object) -> None:
        """Send to every other registered site."""
        for dst in self._handlers:
            if dst != src:
                self.send(src, dst, payload)

    def _latency(self) -> float:
        return self._rng.uniform(self.config.min_latency,
                                 self.config.max_latency)

    def _schedule(self, src: SiteId, dst: SiteId, payload: object,
                  time: float, attempt: int) -> None:
        self._sequence += 1
        heapq.heappush(
            self._queue, _Event(time, self._sequence, src, dst, payload, attempt)
        )

    # -- running -----------------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            if self._blocked(event.src, event.dst):
                self._held.append(event)
                continue
            if (
                event.attempt < self.config.max_transmit_attempts
                and self._rng.random() < self.config.drop_rate
            ):
                # Lost transmission: the transport retries later.
                self.dropped_transmissions += 1
                self._schedule(
                    event.src,
                    event.dst,
                    event.payload,
                    self.now + self.config.retransmit_delay + self._latency(),
                    event.attempt + 1,
                )
                return True
            self._handlers[event.dst](event.src, event.payload)
            self.delivered_messages += 1
            if self._rng.random() < self.config.duplicate_rate:
                self.duplicated_messages += 1
                self._schedule(
                    event.src, event.dst, event.payload,
                    self.now + self._latency(), event.attempt,
                )
            return True
        return False

    def run(self, max_events: int = 1_000_000) -> int:
        """Deliver until quiescent (or the event budget runs out);
        returns the number of events processed. Messages held behind a
        partition do not count as pending."""
        processed = 0
        while processed < max_events and self.step():
            processed += 1
        if processed >= max_events and self._queue:
            raise ReplicationError("network did not quiesce within budget")
        return processed

    @property
    def pending(self) -> int:
        """Events waiting in the queue (excluding partition-held ones)."""
        return len(self._queue)

    @property
    def held(self) -> int:
        """Messages currently blocked by the partition."""
        return len(self._held)
