"""Deterministic discrete-event network simulator.

Models the asynchronous message-passing environment the paper assumes:
messages between sites experience variable latency (hence reordering),
can be lost (the transport retransmits, so delivery is eventual — the
fair-lossy link + retry abstraction), can be duplicated, can be
corrupted in transit (bit flips; the receiver detects the damage, the
transport retransmits), and partitions can isolate groups of sites for
a while.

Payloads are **bytes** — the wire carries frames from
:mod:`repro.replication.wire`, never live objects — so every cost the
simulation reports (per-link byte counters, totals) is a measured
property of real encoded traffic, and the corruption fault operates on
actual bits. A handler that cannot decode what it received raises
:class:`repro.errors.DecodeError`; the transport treats that exactly
like a lost transmission and retries.

Everything is driven by one seeded RNG, so a whole multi-site scenario
replays identically from its seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple

from repro.core.disambiguator import SiteId
from repro.errors import DecodeError, ReplicationError
from repro.util.rng import derive_rng

#: A handler invoked on delivery: handler(src, payload bytes).
Handler = Callable[[SiteId, bytes], None]


@dataclass(frozen=True)
class NetworkConfig:
    """Tunables of the simulated network."""

    #: Uniform latency bounds (simulated milliseconds).
    min_latency: float = 5.0
    max_latency: float = 50.0
    #: Probability a transmission attempt is lost (and retransmitted).
    drop_rate: float = 0.0
    #: Probability a delivered message is delivered once more.
    duplicate_rate: float = 0.0
    #: Probability a transmission arrives with a flipped bit. The
    #: receiver's decoder rejects the damaged frame (CRC mismatch →
    #: :class:`repro.errors.DecodeError`) and the transport retries —
    #: corruption is loss that costs a round trip to notice.
    corruption_rate: float = 0.0
    #: Delay before a lost (or corrupted) transmission is retried.
    retransmit_delay: float = 100.0
    #: Attempts before the transport stops pretending to lose the
    #: message (keeps simulations finite; models eventual delivery).
    max_transmit_attempts: int = 16


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    src: SiteId = field(compare=False)
    dst: SiteId = field(compare=False)
    payload: bytes = field(compare=False)
    attempt: int = field(compare=False, default=1)


class SimulatedNetwork:
    """An event-queue network connecting registered sites.

    The wire carries bytes only: :meth:`send` rejects anything that is
    not a ``bytes`` payload, which is what keeps the byte counters
    honest — every number below measures encoded frames that actually
    crossed a link.
    """

    def __init__(self, config: NetworkConfig | None = None,
                 seed: int = 0) -> None:
        self.config = config or NetworkConfig()
        self._rng = derive_rng(seed, "network")
        self._handlers: Dict[SiteId, Handler] = {}
        self._queue: List[_Event] = []
        self._held: List[_Event] = []  # messages blocked by a partition
        self._partitions: List[Set[SiteId]] = []
        self._sequence = 0
        self.now = 0.0
        #: Delivery counters, for assertions and metrics.
        self.sent_messages = 0
        self.delivered_messages = 0
        self.dropped_transmissions = 0
        self.duplicated_messages = 0
        self.corrupted_transmissions = 0
        #: Deliveries the receiver rejected as undecodable (corruption
        #: detected); each one triggered a retransmission.
        self.decode_rejections = 0
        #: Byte counters: payload bytes accepted by :meth:`send` /
        #: payload bytes handed to handlers (duplicates included).
        self.bytes_sent = 0
        self.bytes_delivered = 0
        #: Delivered payload bytes per directed link ``(src, dst)`` —
        #: what the wire-cost experiments and benchmarks read.
        self.link_bytes: Dict[Tuple[SiteId, SiteId], int] = {}

    # -- wiring ------------------------------------------------------------------

    def register(self, site: SiteId, handler: Handler) -> None:
        """Attach a site's delivery handler."""
        if site in self._handlers:
            raise ReplicationError(f"site {site} already registered")
        self._handlers[site] = handler

    def disconnect(self, site: SiteId) -> None:
        """Detach a site (a crash, in the simulations). Messages
        already in flight to it are treated as losses and retried —
        the retransmissions bridge a short downtime; a longer one is
        what the anti-entropy exchange recovers on rejoin. The site id
        can be :meth:`register`-ed again (a restarted process)."""
        self._handlers.pop(site, None)

    @property
    def sites(self) -> Tuple[SiteId, ...]:
        return tuple(sorted(self._handlers))

    # -- partitions -----------------------------------------------------------------

    def partition(self, *groups: Set[SiteId]) -> None:
        """Split the network: messages may only flow within a group.

        Sites not mentioned in any group form an implicit final group.
        """
        named = [set(g) for g in groups]
        rest = set(self._handlers) - set().union(*named) if named else set()
        if rest:
            named.append(rest)
        self._partitions = named

    def heal(self) -> None:
        """Remove the partition and release held messages."""
        self._partitions = []
        for event in self._held:
            # Held messages resume with a fresh latency from *now*.
            self._schedule(event.src, event.dst, event.payload,
                           self.now + self._latency(), event.attempt)
        self._held = []

    def _blocked(self, a: SiteId, b: SiteId) -> bool:
        for group in self._partitions:
            if (a in group) != (b in group):
                return True
        return False

    def reachable(self, src: SiteId, dst: SiteId) -> bool:
        """Whether a message from ``src`` could currently reach ``dst``:
        the destination is registered (alive) and no partition separates
        the two. Anti-entropy peer selection consults this — a request
        addressed across a partition would only be held until heal."""
        return dst in self._handlers and not self._blocked(src, dst)

    # -- sending --------------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: bytes) -> None:
        """Enqueue a message; delivery happens during :meth:`run`.

        Only ``bytes`` payloads are accepted: the network is a wire,
        not an object bus. Encode with
        :func:`repro.replication.wire.encode_wire` first.
        """
        if dst not in self._handlers:
            raise ReplicationError(f"unknown destination site {dst}")
        if not isinstance(payload, (bytes, bytearray)):
            raise ReplicationError(
                "network payloads must be bytes (a wire frame); got "
                f"{type(payload).__name__} — encode with "
                "repro.replication.wire.encode_wire"
            )
        payload = bytes(payload)
        self.sent_messages += 1
        self.bytes_sent += len(payload)
        self._schedule(src, dst, payload, self.now + self._latency(), 1)

    def broadcast(self, src: SiteId, payload: bytes) -> None:
        """Send to every other registered site."""
        for dst in self._handlers:
            if dst != src:
                self.send(src, dst, payload)

    def _latency(self) -> float:
        return self._rng.uniform(self.config.min_latency,
                                 self.config.max_latency)

    def _schedule(self, src: SiteId, dst: SiteId, payload: bytes,
                  time: float, attempt: int) -> None:
        self._sequence += 1
        heapq.heappush(
            self._queue, _Event(time, self._sequence, src, dst, payload, attempt)
        )

    def _retransmit(self, event: _Event) -> None:
        self._schedule(
            event.src,
            event.dst,
            event.payload,
            self.now + self.config.retransmit_delay + self._latency(),
            event.attempt + 1,
        )

    def _flip_bit(self, payload: bytes) -> bytes:
        """A copy of ``payload`` with one RNG-chosen bit inverted."""
        damaged = bytearray(payload)
        position = self._rng.randrange(len(damaged) * 8)
        damaged[position // 8] ^= 0x80 >> (position % 8)
        return bytes(damaged)

    def _account_delivery(self, event: _Event, size: int) -> None:
        self.delivered_messages += 1
        self.bytes_delivered += size
        link = (event.src, event.dst)
        self.link_bytes[link] = self.link_bytes.get(link, 0) + size

    # -- running -----------------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self.now = max(self.now, event.time)
            if self._blocked(event.src, event.dst):
                self._held.append(event)
                continue
            final_attempt = event.attempt >= self.config.max_transmit_attempts
            if event.dst not in self._handlers:
                # Destination offline (crashed between send and
                # delivery): a loss. Retries bridge a short downtime;
                # after the attempt budget the message is abandoned and
                # rejoin recovery falls to anti-entropy.
                self.dropped_transmissions += 1
                if not final_attempt:
                    self._retransmit(event)
                return True
            if (not final_attempt
                    and self._rng.random() < self.config.drop_rate):
                # Lost transmission: the transport retries later.
                self.dropped_transmissions += 1
                self._retransmit(event)
                return True
            handler = self._handlers[event.dst]
            if (not final_attempt and len(event.payload)
                    and self._rng.random() < self.config.corruption_rate):
                # Bit flip in transit. The damaged frame still crosses
                # the wire (and is billed to the link); the receiver's
                # decoder rejects it and the transport retries. The
                # final attempt is never corrupted, so delivery stays
                # eventual, mirroring the drop fault.
                self.corrupted_transmissions += 1
                damaged = self._flip_bit(event.payload)
                try:
                    handler(event.src, damaged)
                except DecodeError:
                    self.decode_rejections += 1
                    self._account_delivery(event, len(damaged))
                    self._retransmit(event)
                    return True
                # The flip survived decoding (possible only for frames
                # without an integrity check): it was delivered, fall
                # through to normal accounting.
                self._account_delivery(event, len(damaged))
                return True
            try:
                handler(event.src, event.payload)
            except DecodeError:
                # The receiver rejected intact bytes (sender-side
                # framing defect): still loss to the transport, which
                # retries until attempts run out, then abandons the
                # poison message rather than aborting the simulation.
                self.decode_rejections += 1
                self._account_delivery(event, len(event.payload))
                if not final_attempt:
                    self._retransmit(event)
                return True
            self._account_delivery(event, len(event.payload))
            if self._rng.random() < self.config.duplicate_rate:
                self.duplicated_messages += 1
                self._schedule(
                    event.src, event.dst, event.payload,
                    self.now + self._latency(), event.attempt,
                )
            return True
        return False

    def run(self, max_events: int = 1_000_000) -> int:
        """Deliver until quiescent (or the event budget runs out);
        returns the number of events processed. Messages held behind a
        partition do not count as pending."""
        processed = 0
        while processed < max_events and self.step():
            processed += 1
        if processed >= max_events and self._queue:
            raise ReplicationError("network did not quiesce within budget")
        return processed

    def advance(self, delta: float) -> float:
        """Advance simulated time by ``delta`` ms with no traffic.

        A quiesced simulation (empty queue) has no event to pull time
        forward, so age- and backoff-based policies would never expire;
        the anti-entropy driver advances the clock explicitly while
        causal gaps persist. Returns the new ``now``.
        """
        if delta > 0:
            self.now += delta
        return self.now

    @property
    def pending(self) -> int:
        """Events waiting in the queue (excluding partition-held ones)."""
        return len(self._queue)

    @property
    def held(self) -> int:
        """Messages currently blocked by the partition."""
        return len(self._held)

    def link_bytes_to(self, dst: SiteId) -> int:
        """Total delivered payload bytes addressed to ``dst``."""
        return sum(size for (_, to), size in self.link_bytes.items()
                   if to == dst)

    def link_bytes_from(self, src: SiteId) -> int:
        """Total delivered payload bytes that ``src`` put on the wire."""
        return sum(size for (frm, _), size in self.link_bytes.items()
                   if frm == src)
