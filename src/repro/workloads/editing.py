"""Synthetic edit-session generation.

Given a :class:`repro.workloads.corpus.DocumentSpec`, the generator
produces a revision history whose statistics match the published ones:
the exact revision count, initial and final sizes, and the qualitative
structure the paper describes —

- edits are *localized*: each revision touches a few spots, with runs of
  consecutive inserts/deletes around them;
- *modify* dominates: changing an atom is a delete plus an insert
  (section 5: "this results in an unexpectedly large number of
  deletes"), the more so for wiki pages with paragraph atoms;
- wiki pages suffer *vandalism episodes*: a large slice of the document
  is defaced, then an administrator restores it — doubling the churn;
- documents drift towards their final size with edit activity spread
  over the whole history.

The final revision is steered to the exact published atom count, and the
atom text is sized so the final byte size lands near the published one.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError
from repro.workloads.corpus import DocumentSpec
from repro.workloads.revision import History
from repro.workloads.text import make_atoms
from repro.util.rng import derive_rng


class HistoryGenerator:
    """Deterministic history synthesis for one document spec."""

    def __init__(self, spec: DocumentSpec, seed: int = 0) -> None:
        if spec.revisions < 2:
            raise WorkloadError("a history needs at least two revisions")
        self.spec = spec
        self._rng = derive_rng(seed, "history", spec.name)
        self._fresh_counter = 0

    # -- atom supply ---------------------------------------------------------------

    def _fresh_atoms(self, count: int) -> List[str]:
        """New atoms, each tagged to be distinct from every other (so
        diffs never alias separately inserted atoms), sized so the final
        document lands near the published byte count."""
        atoms = make_atoms(
            self._rng, count, self.spec.kind,
            target_bytes=self.spec.avg_atom_bytes - 8,
        )
        tagged = []
        for atom in atoms:
            self._fresh_counter += 1
            tagged.append(f"{atom} #{self._fresh_counter}")
        return tagged

    # -- generation ------------------------------------------------------------------

    def generate(self) -> History:
        """Produce the full revision history."""
        spec = self.spec
        rng = self._rng
        history = History(spec.name, spec.kind)
        current = self._fresh_atoms(spec.initial_atoms)
        history.append_snapshot(current)

        edit_revisions = spec.revisions - 1
        growth_total = spec.final_atoms - spec.initial_atoms
        # Vandalism slots: pick distinct interior revisions; an episode
        # takes a pair (deface, restore).
        vandal_at = set()
        if spec.vandalism_episodes and edit_revisions > 8:
            candidates = list(range(2, edit_revisions - 2))
            rng.shuffle(candidates)
            for revision in candidates[: spec.vandalism_episodes]:
                vandal_at.add(revision)

        defaced: List[str] = []
        defaced_from = 0
        for step in range(1, edit_revisions + 1):
            if defaced:
                # Restore: the administrator re-adds the removed text.
                # Restored paragraphs are *new atoms* to the CRDT (the
                # old ones were deleted), doubling the churn.
                current = (
                    current[:defaced_from]
                    + self._restore(defaced)
                    + current[defaced_from:]
                )
                defaced = []
            elif step in vandal_at and len(current) > 10:
                # Deface: blank out a large contiguous slice.
                span = max(3, int(len(current) * rng.uniform(0.3, 0.7)))
                start = rng.randint(0, len(current) - span)
                defaced = current[start:start + span]
                defaced_from = start
                current = current[:start] + current[start + span:]
            else:
                target = spec.initial_atoms + round(
                    growth_total * step / edit_revisions
                )
                current = self._ordinary_revision(current, target)
            history.append_snapshot(current)

        # Steer the last snapshot to the exact published atom count.
        final = list(history.final.atoms)
        while len(final) < spec.final_atoms:
            final.insert(rng.randint(0, len(final)), self._fresh_atoms(1)[0])
        while len(final) > spec.final_atoms:
            final.pop(rng.randrange(len(final)))
        history.revisions[-1] = history.revisions[-1].__class__(
            history.revisions[-1].number, tuple(final)
        )
        return history

    def _restore(self, atoms: List[str]) -> List[str]:
        """Restored text: same content, re-tagged (fresh identity)."""
        restored = []
        for atom in atoms:
            self._fresh_counter += 1
            base = atom.rsplit(" #", 1)[0]
            restored.append(f"{base} #{self._fresh_counter}")
        return restored

    def _ordinary_revision(self, current: List[str], target: int) -> List[str]:
        """One regular editing session."""
        spec = self.spec
        rng = self._rng
        atoms = list(current)
        # Several localized edit spots per session. Wiki sessions are
        # single-author drive-by edits (few spots, whole-paragraph
        # modifies); LaTeX commits batch substantial rewrites — an SVN
        # commit touches many lines, which is what drives the paper's
        # high tombstone fractions (77% without flattening).
        if spec.kind == "wiki":
            spots = rng.randint(1, 3)
            modify_p = 0.6
            run_max = 3
        else:
            spots = rng.randint(4, 9)
            modify_p = 0.55
            run_max = 6
        for _ in range(spots):
            if not atoms:
                atoms.extend(self._fresh_atoms(2))
                continue
            where = rng.randrange(len(atoms))
            action = rng.random()
            if action < modify_p:
                # Modify a run: delete + insert at the same spot.
                run = min(rng.randint(1, run_max), len(atoms) - where)
                replacement = self._fresh_atoms(run)
                atoms[where:where + run] = replacement
            elif action < modify_p + 0.25:
                run = rng.randint(1, run_max)
                atoms[where:where] = self._fresh_atoms(run)
            else:
                run = min(rng.randint(1, run_max), len(atoms) - where)
                del atoms[where:where + run]
        # Drift towards the size trajectory: append/trim near the end,
        # the common growth pattern of both wikis and papers.
        while len(atoms) < target:
            tail = rng.random() < 0.7
            index = len(atoms) if tail else rng.randint(0, len(atoms))
            atoms[index:index] = self._fresh_atoms(1)
        while len(atoms) > target and atoms:
            atoms.pop(rng.randrange(len(atoms)))
        return atoms


def generate_history(spec: DocumentSpec, seed: int = 0) -> History:
    """Convenience wrapper: one spec, one seed, one history."""
    return HistoryGenerator(spec, seed).generate()
