"""Revision histories: the trace model.

A :class:`History` is what a version-control system stores — a named
sequence of full document snapshots (:class:`Revision`). The replay
machinery diffs consecutive snapshots into insert/delete operations,
mirroring the paper's procedure over SVN and Wikipedia histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Revision:
    """One document snapshot: a tuple of atoms (lines or paragraphs)."""

    number: int
    atoms: Tuple[str, ...]

    @property
    def byte_size(self) -> int:
        """Snapshot size in bytes (UTF-8 atoms plus one separator each,
        the newline of a line or the blank line of a paragraph)."""
        return sum(len(a.encode("utf-8")) + 1 for a in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass
class History:
    """A named revision history."""

    name: str
    kind: str  # "wiki" | "latex" | other
    revisions: List[Revision] = field(default_factory=list)

    def append_snapshot(self, atoms: Sequence[str]) -> Revision:
        revision = Revision(len(self.revisions), tuple(atoms))
        self.revisions.append(revision)
        return revision

    @property
    def initial(self) -> Revision:
        if not self.revisions:
            raise WorkloadError(f"history {self.name!r} is empty")
        return self.revisions[0]

    @property
    def final(self) -> Revision:
        if not self.revisions:
            raise WorkloadError(f"history {self.name!r} is empty")
        return self.revisions[-1]

    def pairs(self) -> Iterator[Tuple[Revision, Revision]]:
        """Consecutive (previous, next) revision pairs."""
        for i in range(1, len(self.revisions)):
            yield self.revisions[i - 1], self.revisions[i]

    def __len__(self) -> int:
        return len(self.revisions)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.kind}, {len(self.revisions)} revisions, "
            f"{len(self.initial)} -> {len(self.final)} atoms, "
            f"{self.final.byte_size} bytes"
        )
