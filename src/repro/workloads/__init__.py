"""Edit-history workloads: the evaluation's trace substrate.

The paper replays revision histories of three Wikipedia pages and three
LaTeX files. Those repositories are not available offline, so this
package generates *synthetic histories with the published statistics* of
each document (sizes, revision counts, edit structure — see DESIGN.md
section 3.4) and replays them through any sequence CRDT with the same
diff-based procedure the paper uses.
"""

from repro.workloads.diff import myers_diff, edit_script, apply_script, EditOp
from repro.workloads.revision import History, Revision
from repro.workloads.corpus import (
    DocumentSpec,
    PAPER_DOCUMENTS,
    LATEX_DOCUMENTS,
    WIKI_DOCUMENTS,
    document_spec,
)
from repro.workloads.editing import HistoryGenerator, generate_history
from repro.workloads.replay import ReplayResult, replay_history, replay_into

__all__ = [
    "myers_diff",
    "edit_script",
    "apply_script",
    "EditOp",
    "History",
    "Revision",
    "DocumentSpec",
    "PAPER_DOCUMENTS",
    "LATEX_DOCUMENTS",
    "WIKI_DOCUMENTS",
    "document_spec",
    "HistoryGenerator",
    "generate_history",
    "ReplayResult",
    "replay_history",
    "replay_into",
]
