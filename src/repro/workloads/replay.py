"""Trace replay: drive a sequence CRDT through a revision history.

Replay follows the paper's experimental procedure (section 5): start
from the initial snapshot, then for each revision compute the diff from
the previous version and execute the equivalent inserts and deletes.
Optional flatten cadence ("selecting flattening some cold area every 1,
2 or 8 revisions") and a per-revision probe hook (Figure 6 samples node
counts over the document lifetime) plug into the loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.baselines.interface import SequenceCRDT
from repro.core.treedoc import Treedoc
from repro.errors import WorkloadError
from repro.workloads.diff import edit_script
from repro.workloads.revision import History

#: Probe called after each revision: probe(revision_number, doc).
Probe = Callable[[int, object], None]


@dataclass
class ReplayResult:
    """What a replay did and how long it took."""

    history_name: str
    revisions: int = 0
    inserts: int = 0
    deletes: int = 0
    flattens: int = 0
    elapsed_seconds: float = 0.0
    final_atoms: int = 0
    #: Extra probe output, if the caller's probe collects any.
    samples: List[object] = field(default_factory=list)


def replay_history(
    doc: Treedoc,
    history: History,
    flatten_every: Optional[int] = None,
    flatten_min_age: int = 1,
    flatten_min_depth: int = 1,
    probe: Optional[Probe] = None,
    use_runs: bool = True,
) -> ReplayResult:
    """Replay ``history`` into a Treedoc replica.

    ``flatten_every=k`` triggers the cold-region flatten heuristic every
    ``k`` revisions (the Table 1 "Flatten" column); ``use_runs`` groups
    each revision's consecutive inserts (the balancing variant of
    section 5.1) when the document's allocator has balancing enabled.
    """
    result = ReplayResult(history.name)
    started = time.perf_counter()
    doc.insert_text(0, list(history.initial.atoms))
    doc.note_revision()
    result.inserts += len(history.initial)
    if probe is not None:
        probe(0, doc)
    for previous, current in history.pairs():
        for op in edit_script(previous.atoms, current.atoms):
            if op.kind == "insert":
                if use_runs:
                    doc.insert_text(op.index, list(op.atoms))
                else:
                    for offset, atom in enumerate(op.atoms):
                        doc.insert(op.index + offset, atom)
                result.inserts += len(op.atoms)
            else:
                doc.delete_range(op.index, op.index + op.count)
                result.deletes += op.count
        revision = doc.note_revision()
        if flatten_every and revision % flatten_every == 0:
            flattened = doc.flatten_cold(
                min_age=flatten_min_age, min_depth=flatten_min_depth
            )
            if flattened is not None:
                result.flattens += 1
        if probe is not None:
            probe(current.number, doc)
        result.revisions += 1
        # The per-revision convergence check reads the whole snapshot;
        # with the live-snapshot cache this is a list comparison, not a
        # tree walk per revision.
        if tuple(doc.atoms()) != current.atoms:
            raise WorkloadError(
                f"replay diverged from snapshot at revision {current.number}"
            )
    result.elapsed_seconds = time.perf_counter() - started
    result.final_atoms = len(doc)
    return result


def replay_into(
    doc: SequenceCRDT,
    history: History,
    use_runs: bool = True,
) -> ReplayResult:
    """Replay ``history`` into any sequence CRDT (baseline comparisons)."""
    result = ReplayResult(history.name)
    started = time.perf_counter()
    doc.insert_text(0, list(history.initial.atoms))
    result.inserts += len(history.initial)
    for previous, current in history.pairs():
        for op in edit_script(previous.atoms, current.atoms):
            if op.kind == "insert":
                if use_runs:
                    doc.insert_text(op.index, list(op.atoms))
                else:
                    for offset, atom in enumerate(op.atoms):
                        doc.insert(op.index + offset, atom)
                result.inserts += len(op.atoms)
            else:
                doc.delete_range(op.index, op.index + op.count)
                result.deletes += op.count
        result.revisions += 1
        if tuple(doc.atoms()) != current.atoms:
            raise WorkloadError(
                f"replay diverged from snapshot at revision {current.number}"
            )
    result.elapsed_seconds = time.perf_counter() - started
    result.final_atoms = len(doc)
    return result
