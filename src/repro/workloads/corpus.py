"""The six evaluation documents, with the paper's published statistics.

Table 1 and Table 2 give, for each document: kind, final size in atoms
(paragraphs for wiki pages, lines for LaTeX files), final size in bytes,
and revision count; Table 2 adds initial sizes for the least and most
active documents (99 and 9 atoms). The specs below pin the published
numbers and estimate the two unpublished initial sizes from Table 2's
averages. The histories themselves are synthesized to match
(DESIGN.md section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError


@dataclass(frozen=True)
class DocumentSpec:
    """Published statistics of one evaluation document."""

    name: str
    kind: str  # "wiki" (paragraph atoms) | "latex" (line atoms)
    final_atoms: int
    final_bytes: int
    revisions: int
    initial_atoms: int
    #: Wikipedia pages suffer vandalism episodes (mass deface + restore);
    #: expected number over the whole history.
    vandalism_episodes: int = 0
    #: Flatten cadences evaluated for this document in Table 1
    #: ("number of revisions between flatten heuristics").
    flatten_cadences: tuple = ()

    @property
    def atom_label(self) -> str:
        return "paras" if self.kind == "wiki" else "lines"

    @property
    def avg_atom_bytes(self) -> float:
        return self.final_bytes / self.final_atoms


#: Wikipedia pages (paragraph granularity, flatten cadences 1 and 2).
WIKI_DOCUMENTS: List[DocumentSpec] = [
    DocumentSpec(
        name="Distributed Computing",
        kind="wiki",
        final_atoms=171,
        final_bytes=19_686,
        revisions=870,
        initial_atoms=9,       # Table 2, "most active"
        vandalism_episodes=12,
        flatten_cadences=(1, 2),
    ),
    DocumentSpec(
        name="IBM POWER",
        kind="wiki",
        final_atoms=184,
        final_bytes=24_651,
        revisions=401,
        initial_atoms=40,      # estimated from Table 2 averages
        vandalism_episodes=6,
        flatten_cadences=(1, 2),
    ),
    DocumentSpec(
        name="Grey Owl",
        kind="wiki",
        final_atoms=110,
        final_bytes=12_388,
        revisions=242,
        initial_atoms=30,      # estimated from Table 2 averages
        vandalism_episodes=4,
        flatten_cadences=(1, 2),
    ),
]

#: LaTeX files from the SVN repository (line granularity, cadences 2/8).
LATEX_DOCUMENTS: List[DocumentSpec] = [
    DocumentSpec(
        name="acf.tex",
        kind="latex",
        final_atoms=332,
        final_bytes=14_048,
        revisions=51,
        initial_atoms=99,      # Table 2, "less active"
        flatten_cadences=(2, 8),
    ),
    DocumentSpec(
        name="algorithms.tex",
        kind="latex",
        final_atoms=396,
        final_bytes=15_186,
        revisions=58,
        initial_atoms=120,     # estimated from Table 2 averages
        flatten_cadences=(2, 8),
    ),
    DocumentSpec(
        name="propagation.tex",
        kind="latex",
        final_atoms=481,
        final_bytes=22_170,
        revisions=68,
        initial_atoms=150,     # estimated from Table 2 averages
        flatten_cadences=(2, 8),
    ),
]

#: All six, in the order of Table 1.
PAPER_DOCUMENTS: List[DocumentSpec] = WIKI_DOCUMENTS + LATEX_DOCUMENTS

_BY_NAME: Dict[str, DocumentSpec] = {d.name: d for d in PAPER_DOCUMENTS}


def document_spec(name: str) -> DocumentSpec:
    """The spec of a paper document by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown document {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
