"""Synthetic atom text: pseudo-prose lines and paragraphs.

The overheads Treedoc's evaluation measures depend on atom *sizes* and
edit *positions*, not on what the text says; these generators produce
deterministic pseudo-text with realistic length distributions — LaTeX
source lines (tens of bytes) and Wikipedia paragraphs (about a hundred
bytes), per the byte/atom ratios of Table 1.
"""

from __future__ import annotations

import random
from typing import List

_SYLLABLES = (
    "re pli ca tion tree doc com mute edit conver gence buf fer "
    "atom iden ti fi er dense path nod dis amb bal ance flat ten "
    "site clock merge causal order commit wiki page line text"
).split()

_LATEX_SHAPES = (
    "\\{cmd}{{{w1} {w2}}}",
    "{w1} {w2} {w3} {w4} {w5}",
    "% {w1} {w2} {w3}",
    "{w1} {w2} \\emph{{{w3}}} {w4}",
    "\\begin{{{w1}}}",
    "\\end{{{w1}}}",
    "  \\item {w1} {w2} {w3}",
)


def pseudo_word(rng: random.Random) -> str:
    """A pronounceable pseudo-word of 1-3 syllables."""
    return "".join(rng.choice(_SYLLABLES) for _ in range(rng.randint(1, 3)))


def latex_line(rng: random.Random) -> str:
    """A LaTeX-flavoured source line (tens of bytes)."""
    shape = rng.choice(_LATEX_SHAPES)
    words = {f"w{i}": pseudo_word(rng) for i in range(1, 6)}
    words["cmd"] = rng.choice(("section", "label", "cite", "ref", "textbf"))
    return shape.format(**words)


def wiki_paragraph(rng: random.Random) -> str:
    """A paragraph of pseudo-prose (roughly a hundred bytes, matching
    the byte/paragraph ratios of Table 1)."""
    sentences = []
    for _ in range(rng.randint(1, 2)):
        words = [pseudo_word(rng) for _ in range(rng.randint(3, 8))]
        words[0] = words[0].capitalize()
        sentences.append(" ".join(words) + ".")
    return " ".join(sentences)


def calibrated_atom(rng: random.Random, kind: str,
                    target_bytes: float) -> str:
    """One atom whose length varies around ``target_bytes`` (so a
    corpus's final byte size lands near the published figure)."""
    base = wiki_paragraph(rng) if kind == "wiki" else latex_line(rng)
    goal = max(8, int(target_bytes * rng.uniform(0.6, 1.4)))
    while len(base) < goal:
        base += " " + pseudo_word(rng)
    if len(base) > goal + 16:
        cut = base.rfind(" ", 0, goal + 8)
        if cut > 8:
            base = base[:cut] + "."
    return base


def make_atoms(rng: random.Random, count: int, kind: str,
               target_bytes: float | None = None) -> List[str]:
    """``count`` fresh atoms of the given document kind."""
    if target_bytes is not None:
        return [calibrated_atom(rng, kind, target_bytes) for _ in range(count)]
    maker = wiki_paragraph if kind == "wiki" else latex_line
    return [maker(rng) for _ in range(count)]
