"""Myers O(ND) difference algorithm over atom sequences.

The paper's replay procedure "computes the differences from the previous
version, and executes an equivalent sequence of insert and delete
operations" (section 5). This module provides that: a minimal
insert/delete script between two atom sequences, positions expressed
against the evolving document so the script can drive any sequence CRDT
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import WorkloadError


def myers_diff(a: Sequence[object], b: Sequence[object]) -> List[Tuple[str, object]]:
    """Shortest edit script as ``(tag, atom)`` pairs.

    Tags are ``"equal"`` (atom kept), ``"delete"`` (atom of ``a``
    removed) and ``"insert"`` (atom of ``b`` added); the greedy O(ND)
    algorithm of Myers (1986).

    Revision edits are localized (the paper's trace observation), so
    the common prefix and suffix — usually most of both sequences — are
    stripped before the O(ND) core runs; replaying a history then costs
    diff time proportional to what actually changed per revision, not
    to the whole document.
    """
    n, m = len(a), len(b)
    limit = min(n, m)
    prefix = 0
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    bound = limit - prefix
    while suffix < bound and a[n - 1 - suffix] == b[m - 1 - suffix]:
        suffix += 1
    if prefix or suffix:
        core = _myers_core(a[prefix:n - suffix], b[prefix:m - suffix])
        script = [("equal", atom) for atom in a[:prefix]]
        script.extend(core)
        script.extend(("equal", atom) for atom in a[n - suffix:n])
        return script
    return _myers_core(a, b)


def _myers_core(a: Sequence[object], b: Sequence[object]) -> List[Tuple[str, object]]:
    """The untrimmed greedy O(ND) forward pass with backtracking.

    Diagonals live in a flat list indexed by ``k + offset`` (the
    classic array layout) rather than a dict — the inner loop is pure
    index arithmetic.
    """
    n, m = len(a), len(b)
    if n == 0:
        return [("insert", atom) for atom in b]
    if m == 0:
        return [("delete", atom) for atom in a]
    max_d = n + m
    offset = max_d
    # v[offset + k] = furthest x on diagonal k; per-round copies for
    # the backtrack. Sentinel -1 marks diagonals not yet reached.
    v: List[int] = [-1] * (2 * max_d + 2)
    v[offset + 1] = 0
    trace: List[List[int]] = []
    found = False
    for d in range(max_d + 1):
        trace.append(v[offset - d:offset + d + 2])
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[offset + k - 1] < v[offset + k + 1]):
                x = v[offset + k + 1]
                if x < 0:
                    x = 0
            else:
                x = v[offset + k - 1] + 1
                if x < 1:
                    x = 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[offset + k] = x
            if x >= n and y >= m:
                found = True
                break
        if found:
            break
    if not found:  # pragma: no cover - d is bounded by n+m
        raise WorkloadError("diff failed to converge")

    def v_at(row: List[int], d: int, k: int) -> int:
        # row holds diagonals -d .. d+1 of round d; index 0 is -d.
        position = k + d
        if 0 <= position < len(row):
            return row[position]
        return -1  # pragma: no cover - out-of-cone diagonal

    # Backtrack through the recorded rounds.
    script: List[Tuple[str, object]] = []
    x, y = n, m
    for d in range(len(trace) - 1, 0, -1):
        row = trace[d]
        k = x - y
        if k == -d or (k != d and v_at(row, d, k - 1) < v_at(row, d, k + 1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v_at(row, d, prev_k)
        if prev_x < 0:
            prev_x = 0
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            x -= 1
            y -= 1
            script.append(("equal", a[x]))
        if x == prev_x:
            y -= 1
            script.append(("insert", b[y]))
        else:
            x -= 1
            script.append(("delete", a[x]))
    while x > 0 and y > 0:
        x -= 1
        y -= 1
        script.append(("equal", a[x]))
    while x > 0:
        x -= 1
        script.append(("delete", a[x]))
    while y > 0:
        y -= 1
        script.append(("insert", b[y]))
    script.reverse()
    return script


@dataclass(frozen=True)
class EditOp:
    """One positional edit: insert ``atoms`` at ``index``, or delete
    ``count`` atoms starting at ``index``. Indices are against the
    document as it stands when the op executes (ops apply in order)."""

    kind: str  # "insert" | "delete"
    index: int
    atoms: Tuple[object, ...] = ()
    count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise WorkloadError(f"bad edit kind {self.kind!r}")


def edit_script(a: Sequence[object], b: Sequence[object]) -> List[EditOp]:
    """Positional edit script turning ``a`` into ``b``.

    Consecutive inserts are grouped into runs (the paper's balancing
    variant groups "all the consecutive inserts of a given revision into
    a minimal sub-tree"); consecutive deletes are grouped likewise.
    """
    ops: List[EditOp] = []
    position = 0
    pending_insert: List[object] = []
    pending_delete = 0

    def flush() -> None:
        nonlocal position, pending_insert, pending_delete
        if pending_delete:
            ops.append(EditOp("delete", position, count=pending_delete))
            pending_delete = 0
        if pending_insert:
            ops.append(EditOp("insert", position, atoms=tuple(pending_insert)))
            position += len(pending_insert)
            pending_insert = []

    for tag, atom in myers_diff(a, b):
        if tag == "equal":
            flush()
            position += 1
        elif tag == "delete":
            if pending_insert:
                flush()
            pending_delete += 1
        else:  # insert
            pending_insert.append(atom)
    flush()
    return ops


def apply_script(atoms: Sequence[object], ops: Sequence[EditOp]) -> List[object]:
    """Apply a positional script to a plain list (the test oracle)."""
    result = list(atoms)
    for op in ops:
        if op.kind == "insert":
            result[op.index:op.index] = list(op.atoms)
        else:
            del result[op.index:op.index + op.count]
    return result
