"""A text-editor buffer over one Treedoc replica.

Atoms are single characters (the paper's illustrative granularity;
section 3 examples). The buffer exposes the calls an editor front-end
makes — insert a string at an offset, delete a range, fetch lines — and
returns the CRDT operations to broadcast. Incoming remote operations are
applied with :meth:`EditorBuffer.apply`.

Cursors are anchored to *identifiers*, not offsets: a cursor remembers
the PosID of the atom it sits before (or end-of-buffer). Remote edits
move the cursor's *offset* but never its anchor, so concurrent editing
feels right without operational transformation — the very point of the
CRDT design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.ops import OpBatch, Operation
from repro.core.path import PosID
from repro.core.treedoc import Treedoc
from repro.errors import ReproError


@dataclass
class Cursor:
    """A position in the buffer, pinned to an identifier.

    ``anchor`` is the PosID of the atom the cursor sits *before*; None
    anchors to end-of-buffer. The owning buffer resolves the current
    offset on demand.
    """

    buffer: "EditorBuffer"
    anchor: Optional[PosID] = None
    name: str = "cursor"

    @property
    def offset(self) -> int:
        """Current character offset (recomputed against live state)."""
        return self.buffer._resolve_anchor(self.anchor)

    def move_to(self, offset: int) -> None:
        """Re-pin the cursor at a character offset."""
        self.anchor = self.buffer._anchor_at(offset)

    def __repr__(self) -> str:
        return f"<Cursor {self.name!r} @{self.offset}>"


class EditorBuffer:
    """Character-granularity editing over a Treedoc replica."""

    def __init__(self, site: int, mode: str = "udis",
                 balanced: bool = True) -> None:
        self.doc = Treedoc(site, mode=mode, balanced=balanced)
        self._cursors: List[Cursor] = []
        #: (generation, lines, line-start offsets) — recomputed only
        #: when the buffer content actually changed.
        self._line_cache: Optional[tuple] = None

    # -- queries ---------------------------------------------------------------

    def text(self) -> str:
        """The whole buffer as a string (generation-cached, see
        :meth:`repro.core.treedoc.Treedoc.text`)."""
        return self.doc.text()

    @property
    def generation(self) -> int:
        """Monotonic counter of buffer-content changes."""
        return self.doc.generation

    def __len__(self) -> int:
        return len(self.doc)

    def _lines_and_starts(self) -> tuple:
        cached = self._line_cache
        generation = self.doc.generation
        if cached is not None and cached[0] == generation:
            return cached
        lines = self.text().split("\n")
        starts = [0]
        offset = 0
        for line in lines[:-1]:
            offset += len(line) + 1
            starts.append(offset)
        cached = (generation, lines, starts)
        self._line_cache = cached
        return cached

    def lines(self) -> List[str]:
        """The buffer split into lines (newline atoms delimit)."""
        return list(self._lines_and_starts()[1])

    def line_start(self, line_number: int) -> int:
        """Character offset of the start of ``line_number`` (0-based)."""
        _, lines, starts = self._lines_and_starts()
        if not 0 <= line_number < len(lines):
            raise IndexError(f"line {line_number} out of range")
        return starts[line_number]

    # -- local editing -----------------------------------------------------------
    #
    # Each edit has a batch form returning one OpBatch (the wire unit —
    # one causal envelope per edit) and a list-of-ops compatibility
    # wrapper with the original signature.

    def insert_batch(self, offset: int, text: str) -> OpBatch:
        """Type ``text`` at ``offset``; returns one batch to broadcast."""
        if not 0 <= offset <= len(self.doc):
            raise IndexError(f"offset {offset} out of range")
        return self.doc.insert_text(offset, list(text))

    def delete_batch(self, start: int, end: int) -> OpBatch:
        """Delete characters in ``[start, end)``; returns one batch."""
        if not 0 <= start <= end <= len(self.doc):
            raise IndexError(f"range [{start}, {end}) out of range")
        return self.doc.delete_range(start, end)

    def replace_batch(self, start: int, end: int, text: str) -> OpBatch:
        """Delete a range and type over it (a modify: delete + insert,
        exactly the paper's model of modification); one batch carries
        both halves."""
        if not 0 <= start <= end <= len(self.doc):
            raise IndexError(f"range [{start}, {end}) out of range")
        return self.doc.replace_range(start, end, list(text))

    def insert_text(self, offset: int, text: str) -> List[Operation]:
        """Type ``text`` at ``offset``; returns the ops to broadcast."""
        return list(self.insert_batch(offset, text).ops)

    def delete_range(self, start: int, end: int) -> List[Operation]:
        """Delete characters in ``[start, end)``; returns the ops."""
        return list(self.delete_batch(start, end).ops)

    def replace_range(self, start: int, end: int,
                      text: str) -> List[Operation]:
        """Compatibility wrapper over :meth:`replace_batch`."""
        return list(self.replace_batch(start, end, text).ops)

    def insert_line(self, line_number: int, line: str) -> List[Operation]:
        """Insert a whole line (with its newline) before ``line_number``."""
        if "\n" in line:
            raise ReproError("insert_line takes a single line")
        offset = (
            self.line_start(line_number)
            if line_number < len(self.lines())
            else len(self.doc)
        )
        return self.insert_text(offset, line + "\n")

    # -- remote operations -----------------------------------------------------------

    def apply(self, op: Operation) -> None:
        """Replay a remote operation or batch (causal order assumed)."""
        self.doc.apply(op)

    def apply_batch(self, batch: OpBatch) -> None:
        """Replay a remote batch through the deferred-index fast path."""
        self.doc.apply_batch(batch)

    def apply_all(self, ops) -> None:
        for op in ops:
            self.apply(op)

    # -- cursors ------------------------------------------------------------------------

    def cursor(self, offset: int = 0, name: str = "cursor") -> Cursor:
        """Create a cursor pinned at ``offset``."""
        cursor = Cursor(self, self._anchor_at(offset), name)
        self._cursors.append(cursor)
        return cursor

    def type_at(self, cursor: Cursor, text: str) -> List[Operation]:
        """Type at a cursor; the cursor ends up after the typed text."""
        offset = cursor.offset
        ops = self.insert_text(offset, text)
        # The anchor (atom after the insertion point) is unchanged; the
        # cursor now sits after the new text automatically, because the
        # anchor atom moved right with it. Nothing to update: that is
        # the point of identifier anchoring.
        return ops

    def backspace_at(self, cursor: Cursor) -> List[Operation]:
        """Delete the character before the cursor."""
        offset = cursor.offset
        if offset == 0:
            return []
        return self.delete_range(offset - 1, offset)

    def _anchor_at(self, offset: int) -> Optional[PosID]:
        if not 0 <= offset <= len(self.doc):
            raise IndexError(f"offset {offset} out of range")
        if offset == len(self.doc):
            return None
        return self.doc.posid_at(offset)

    def _resolve_anchor(self, anchor: Optional[PosID]) -> int:
        if anchor is None:
            return len(self.doc)
        # Count live atoms before the anchor. If the anchored atom was
        # deleted (possibly concurrently), the cursor lands where it
        # used to be: the first live atom after it, found through the
        # identifier order.
        slot = self.doc.tree.lookup(anchor)
        from repro.core.node import slot_is_live
        from repro.core.tree import successor_slot

        if slot is not None and slot_is_live(slot):
            return self.doc.tree.live_rank(slot)
        if slot is None:
            # Identifier discarded (UDIS): fall back to a scan for the
            # first live identifier greater than the anchor.
            for index, posid in enumerate(self.doc.posids()):
                if posid > anchor:
                    return index
            return len(self.doc)
        nxt = successor_slot(slot)
        while nxt is not None and not slot_is_live(nxt):
            nxt = successor_slot(nxt)
        if nxt is None:
            return len(self.doc)
        return self.doc.tree.live_rank(nxt)
