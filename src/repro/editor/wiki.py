"""A wiki page on Treedoc: the paper's other target application.

The evaluation replays Wikipedia histories with *paragraph* atoms; this
module closes the loop by implementing the wiki-side editing model on
top of the CRDT:

- a :class:`WikiPage` holds the page as paragraphs;
- ``save(new_text)`` computes the diff against the current state (the
  same Myers machinery the evaluation uses) and turns it into Treedoc
  operations — modifying a paragraph is a delete plus an insert, which
  is exactly why the paper sees so many deletes on wiki workloads;
- concurrent saves at different replicas merge paragraph-wise with no
  locking: edits to different paragraphs both survive;
- periodic maintenance flattens cold regions, keeping the page's
  identifier and storage overhead bounded over thousands of revisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.ops import Operation
from repro.core.treedoc import Treedoc
from repro.workloads.diff import edit_script


def split_paragraphs(text: str) -> List[str]:
    """Split page text into paragraph atoms (blank-line separated)."""
    paragraphs = [p.strip("\n") for p in text.split("\n\n")]
    return [p for p in paragraphs if p != ""]


@dataclass(frozen=True)
class WikiRevision:
    """One save: its number and edit summary."""

    number: int
    inserted: int
    deleted: int
    author_site: int

    @property
    def churn(self) -> int:
        return self.inserted + self.deleted


class WikiPage:
    """One replica of a wiki page."""

    def __init__(self, site: int, mode: str = "sdis",
                 maintenance_every: Optional[int] = None) -> None:
        self.doc = Treedoc(site, mode=mode)
        self.site = site
        #: Flatten cold regions every N saves (None = never), the
        #: Table 1 "Flatten" knob applied to live wiki editing.
        self.maintenance_every = maintenance_every
        self.history: List[WikiRevision] = []

    # -- reading ------------------------------------------------------------------

    def paragraphs(self) -> List[str]:
        atoms = self.doc.atoms()
        # Paragraph atoms are strings already; atoms() returned a fresh
        # list, so it can be handed out directly.
        if all(type(a) is str for a in atoms):
            return atoms
        return [str(a) for a in atoms]

    def text(self) -> str:
        # Generation-cached join (repeated page renders between saves
        # cost one dict-sized lookup, not a tree walk).
        return self.doc.text("\n\n")

    @property
    def revision(self) -> int:
        return len(self.history)

    # -- editing --------------------------------------------------------------------

    def save(self, new_text: str) -> List[Operation]:
        """Replace the page with ``new_text``; returns the ops to ship.

        The edit is derived by paragraph diff, so untouched paragraphs
        keep their identifiers (and concurrent edits to them merge).
        """
        target = split_paragraphs(new_text)
        ops: List[Operation] = []
        inserted = deleted = 0
        for op in edit_script(self.paragraphs(), target):
            if op.kind == "insert":
                ops.extend(self.doc.insert_run(op.index, list(op.atoms)))
                inserted += len(op.atoms)
            else:
                for _ in range(op.count):
                    ops.append(self.doc.delete(op.index))
                deleted += op.count
        self.doc.note_revision()
        self.history.append(
            WikiRevision(self.revision + 1, inserted, deleted, self.site)
        )
        if (
            self.maintenance_every
            and self.revision % self.maintenance_every == 0
        ):
            # Collect until dry (bounded): the single-shot heuristic the
            # paper measured leaves scattered tombstones behind (its
            # section 5.1 shortfall); an application can simply keep
            # flattening cold regions until none remain.
            for _ in range(8):
                flatten = self.doc.flatten_cold()
                if flatten is None:
                    break
                ops.append(flatten)
        return ops

    def edit_paragraph(self, index: int, new_text: str) -> List[Operation]:
        """Rewrite one paragraph (the drive-by wiki edit)."""
        ops = [self.doc.delete(index)]
        ops.extend(self.doc.insert_run(index, [new_text]))
        self.doc.note_revision()
        self.history.append(WikiRevision(self.revision + 1, 1, 1, self.site))
        return ops

    def revert_vandalism(self, paragraphs: Sequence[str]) -> List[Operation]:
        """Administrator restore: replace the whole page content.

        Restored paragraphs are new atoms (the old ones were deleted by
        the vandal), doubling the churn — the effect section 5 notes.
        """
        return self.save("\n\n".join(paragraphs))

    # -- replication -----------------------------------------------------------------

    def apply(self, op: Operation) -> None:
        """Replay a remote operation (causal order assumed)."""
        self.doc.apply(op)

    def apply_all(self, ops) -> None:
        for op in ops:
            self.apply(op)

    # -- bookkeeping -----------------------------------------------------------------

    def overhead_summary(self) -> str:
        from repro.metrics.overhead import measure_tree

        stats = measure_tree(self.doc.tree, with_disk=False)
        return (
            f"rev {self.revision}: {stats.live_atoms} paragraphs, "
            f"{stats.nodes} nodes, {100 * stats.tombstone_fraction:.0f}% "
            f"dead, avg id {stats.avg_posid_bits:.0f} bits"
        )
