"""Cooperative text editing on top of Treedoc.

The paper's conclusion names the next step: "to enable peer-to-peer
co-operative editing at a large scale, by implementing Treedoc within an
existing text editor or wiki system". This package is that layer:

- :class:`repro.editor.buffer.EditorBuffer` — a text-editor-shaped API
  (character offsets, line operations, string insert/delete) over one
  Treedoc replica, with **identifier-anchored cursors**: a cursor is
  pinned to an atom's PosID, so it stays on "its" character while remote
  edits land anywhere else in the document — the CRDT-native answer to
  the cursor-transformation problem OT systems must solve;
- :class:`repro.editor.session.EditorSession` — an editor attached to a
  replica site on the simulated network, for multi-user sessions.
"""

from repro.editor.buffer import Cursor, EditorBuffer
from repro.editor.session import EditorSession, SharedDocument

__all__ = ["EditorBuffer", "Cursor", "EditorSession", "SharedDocument"]
