"""Multi-user editing sessions over the simulated network.

``SharedDocument`` assembles N :class:`EditorSession` participants, each
an :class:`repro.editor.buffer.EditorBuffer` wired to causal broadcast —
the peer-to-peer cooperative editor the paper's conclusion sketches.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.disambiguator import SiteId
from repro.core.ops import DeleteOp, FlattenOp, InsertOp, OpBatch
from repro.editor.buffer import Cursor, EditorBuffer
from repro.errors import ReplicationError
from repro.replication.broadcast import CausalBroadcast
from repro.replication.network import NetworkConfig, SimulatedNetwork


class EditorSession:
    """One user's editor attached to the shared session."""

    def __init__(self, site: SiteId, network: SimulatedNetwork,
                 mode: str = "udis") -> None:
        self.site = site
        self.buffer = EditorBuffer(site, mode=mode)
        self.broadcast = CausalBroadcast(
            site, network, self._on_deliver, register=True
        )

    # -- editing (each call applies locally and broadcasts ONE batch envelope) --

    def type(self, offset: int, text: str) -> None:
        """Type ``text`` at a character offset."""
        self._send(self.buffer.insert_batch(offset, text))

    def type_at(self, cursor: Cursor, text: str) -> None:
        """Type at a cursor (which stays glued to its anchor)."""
        self._send(self.buffer.insert_batch(cursor.offset, text))

    def erase(self, start: int, end: int) -> None:
        """Delete the character range ``[start, end)``."""
        self._send(self.buffer.delete_batch(start, end))

    def replace(self, start: int, end: int, text: str) -> None:
        """Overwrite a range; the delete and insert halves travel in
        one envelope."""
        self._send(self.buffer.replace_batch(start, end, text))

    def _send(self, batch: OpBatch) -> None:
        if batch.ops:
            self.broadcast.broadcast(batch.seal())

    def cursor(self, offset: int = 0, name: str = "") -> Cursor:
        """A cursor pinned at ``offset``."""
        return self.buffer.cursor(offset, name or f"site-{self.site}")

    def text(self) -> str:
        return self.buffer.text()

    # -- delivery -------------------------------------------------------------------

    def _on_deliver(self, origin: SiteId, payload: object) -> None:
        if isinstance(payload, OpBatch):
            self.buffer.apply_batch(payload)
            return
        if not isinstance(payload, (InsertOp, DeleteOp, FlattenOp)):
            raise ReplicationError(f"unexpected payload {payload!r}")
        self.buffer.apply(payload)


class SharedDocument:
    """An N-user cooperative editing session."""

    def __init__(self, n_users: int, mode: str = "udis",
                 config: Optional[NetworkConfig] = None,
                 seed: int = 0) -> None:
        self.network = SimulatedNetwork(config, seed=seed)
        self.users: Dict[SiteId, EditorSession] = {
            site: EditorSession(site, self.network, mode=mode)
            for site in range(1, n_users + 1)
        }

    def __getitem__(self, site: SiteId) -> EditorSession:
        return self.users[site]

    def __iter__(self):
        return iter(self.users.values())

    def sync(self) -> None:
        """Deliver all in-flight operations."""
        self.network.run()

    def assert_converged(self) -> str:
        """All users see the same text; returns it.

        Reads go through each buffer's generation-cached text, so
        polling convergence between quiescent syncs costs one cache
        lookup per user, not a tree walk."""
        texts = {site: user.text() for site, user in self.users.items()}
        reference = next(iter(texts.values()))
        for site, text in texts.items():
            if text != reference:
                raise ReplicationError(
                    f"user {site} diverged: {text!r} != {reference!r}"
                )
        return reference
